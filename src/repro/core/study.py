"""The interoperability study orchestrator.

:class:`InteroperabilityStudy` is the library's main entry point: it
owns the population, the collection campaign, the matcher and the score
sets, and exposes one method per analysis the paper reports.  Everything
is lazy and memoized; with a configured cache directory, score sets
survive across processes so a benchmark run never recomputes what an
earlier run already measured.

Typical use::

    from repro import InteroperabilityStudy, StudyConfig

    study = InteroperabilityStudy(StudyConfig(n_subjects=80))
    sets = study.score_sets()          # DMG / DMI / DDMG / DDMI
    fnmr = study.fnmr_matrix(1e-4)     # Table 5
    pvals = study.kendall_matrix()     # Table 4
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..matcher import build_matcher
from ..runtime.artifacts import ArtifactStore
from ..runtime.cache import ScoreCache
from ..runtime.config import StudyConfig, resolve_worker_count
from ..runtime.errors import ConfigurationError
from ..runtime.parallel import parallel_map_batched
from ..runtime.supervisor import RetryPolicy
from ..runtime.progress import ProgressReporter
from ..runtime.rng import SeedTree
from ..runtime.shm import SharedTemplateStore, SharedTemplateView, StoreHandle
from ..runtime.telemetry import enable_telemetry, get_logger, get_recorder
from ..sensors.protocol import Collection, ProtocolSettings
from ..datasets.wvu2012 import build_collection
from ..stats.kendall import KendallResult
from .scores import (
    GALLERY_SET,
    MatchJob,
    ScoreSet,
    enumerate_ddmg_jobs,
    enumerate_dmg_jobs,
    probe_set_for,
    run_jobs_batched,
    sample_ddmi_jobs,
    sample_dmi_jobs,
)

# ----------------------------------------------------------------------
# Process-pool plumbing (module level for picklability)
# ----------------------------------------------------------------------
_WORKER_STATE: dict = {}

_log = get_logger("study")


def _init_score_worker(
    source: Union[Collection, StoreHandle],
    matcher_name: str,
    telemetry_active: bool = False,
) -> None:
    """Seed one pool worker's state.

    ``source`` is normally a :class:`StoreHandle` — the worker *maps* the
    parent's shared-memory template block instead of receiving a pickled
    copy of the whole collection.  A raw :class:`Collection` still works
    (tests, and the fallback when shared memory is unavailable).
    """
    if isinstance(source, StoreHandle):
        _WORKER_STATE["collection"] = SharedTemplateView.attach(source)
    else:
        _WORKER_STATE["collection"] = source
    _WORKER_STATE["matcher"] = build_matcher(matcher_name)
    if telemetry_active:
        # Workers aggregate into a local recorder; the parent merges the
        # per-chunk snapshots (no cross-process shared state).
        enable_telemetry()


def _run_job_chunk(args: Tuple[Sequence[MatchJob], str, str]) -> ScoreSet:
    jobs, finger, scenario = args
    return run_jobs_batched(
        jobs, _WORKER_STATE["collection"], _WORKER_STATE["matcher"], finger, scenario
    )


def _run_job_chunk_with_metrics(
    args: Tuple[Sequence[MatchJob], str, str],
) -> Tuple[ScoreSet, dict]:
    """Worker body used when telemetry is on: chunk result + local metrics.

    The worker's registry is reset before the chunk so every snapshot
    covers exactly one chunk; the parent folds them together in order.
    """
    recorder = get_recorder()
    recorder.metrics.reset()
    score_set = _run_job_chunk(args)
    return score_set, recorder.metrics.snapshot()


@dataclass(frozen=True)
class ExecutionOutcome:
    """Result of one :meth:`InteroperabilityStudy._execute` dispatch.

    ``positions`` indexes the *submitted* job list: under fail-fast (the
    default) it is simply ``arange(total)``, while salvage mode
    (``fail_fast=False``) leaves gaps where permanently failed batches
    were skipped — the rows of ``score_set`` line up with ``positions``.
    """

    score_set: ScoreSet
    positions: np.ndarray
    total: int

    @property
    def complete(self) -> bool:
        """Whether every submitted job produced a score."""
        return len(self.positions) == self.total

    @property
    def skipped(self) -> int:
        """How many submitted jobs were skipped."""
        return self.total - len(self.positions)


def _empty_score_set(scenario: str, matcher_name: str) -> ScoreSet:
    """A zero-row ScoreSet (every submitted batch was skipped)."""
    return ScoreSet(
        scenario=scenario,
        matcher_name=matcher_name,
        scores=np.empty(0, dtype=np.float64),
        subject_gallery=np.empty(0, dtype=np.int64),
        subject_probe=np.empty(0, dtype=np.int64),
        device_gallery=np.empty(0, dtype="<U2"),
        device_probe=np.empty(0, dtype="<U2"),
        nfiq_gallery=np.empty(0, dtype=np.int64),
        nfiq_probe=np.empty(0, dtype=np.int64),
    )


class InteroperabilityStudy:
    """One full run of the paper's experiment.

    Parameters
    ----------
    config:
        Scale, seed, matcher and parallelism settings.
    cache:
        Optional on-disk score cache; defaults to the directory named in
        ``config.cache_dir`` (or no caching when that is ``None``).
    artifacts:
        Optional content-addressed artifact store backing the collection
        build; defaults to ``config.artifact_dir`` (or a disabled store
        when that is ``None``, in which case every cold process acquires
        the dataset from seeds).
    protocol:
        Collection-protocol switches (quality gating, device order).
    progress_factory:
        Optional ``(total, label) -> ProgressReporter`` hook; when set,
        dataset acquisition and every score-generation scenario report
        progress through reporters it builds.  ``None`` (default) keeps
        the library silent.
    resume:
        When true, pooled score generation first loads any chunk
        checkpoints an interrupted earlier run streamed into the cache,
        and submits only the unfinished chunks.  Requires a cache
        directory; a run that completes normally removes its
        checkpoints, so resuming a finished run is a no-op.
    fail_fast:
        With the default (true), a permanently failed batch aborts the
        run with the original exception.  With ``fail_fast=False`` the
        failed batch is skipped: the affected device-pair shards are
        not cached (they would be incomplete) and the returned score
        sets simply lack those rows, with the skip counted in telemetry
        (``study.jobs.skipped``) and the run manifest.
    retry_policy:
        Retry/backoff/timeout policy for supervised pooled execution;
        ``None`` (default) reads :meth:`RetryPolicy.from_environment`.
    """

    def __init__(
        self,
        config: StudyConfig,
        cache: Optional[ScoreCache] = None,
        protocol: ProtocolSettings = ProtocolSettings(),
        progress_factory: Optional[
            Callable[[Optional[int], str], ProgressReporter]
        ] = None,
        artifacts: Optional[ArtifactStore] = None,
        resume: bool = False,
        fail_fast: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.config = config
        self._cache = cache if cache is not None else ScoreCache(config.cache_dir)
        self._artifacts = (
            artifacts if artifacts is not None else ArtifactStore(config.artifact_dir)
        )
        self._protocol = protocol
        self._progress_factory = progress_factory
        self._resume = resume
        self._fail_fast = fail_fast
        self._retry_policy = retry_policy
        self._tree = SeedTree(config.master_seed)
        self._collection: Optional[Collection] = None
        self._matcher = None
        self._score_sets: Dict[str, ScoreSet] = {}
        self._d4_diagonal: Optional[ScoreSet] = None

    def _progress_for(
        self, total: Optional[int], label: str
    ) -> Optional[ProgressReporter]:
        if self._progress_factory is None:
            return None
        return self._progress_factory(total, label)

    # ------------------------------------------------------------------
    # Lazy components
    # ------------------------------------------------------------------
    @property
    def finger(self) -> str:
        """The finger the headline score sets use (right index)."""
        return "right_index"

    @property
    def artifacts(self) -> ArtifactStore:
        """The artifact store backing collection builds."""
        return self._artifacts

    def collection(self) -> Collection:
        """The acquired dataset, warm-loaded or built on first use."""
        if self._collection is None:
            self._collection = build_collection(
                self.config,
                self._protocol,
                progress=self._progress_for(self.config.n_subjects, "collection"),
                artifacts=self._artifacts,
            )
        return self._collection

    def matcher(self):
        """The matcher engine named by the configuration."""
        if self._matcher is None:
            self._matcher = build_matcher(self.config.matcher_name)
        return self._matcher

    # ------------------------------------------------------------------
    # Score generation
    # ------------------------------------------------------------------
    def _jobs_for(self, scenario: str) -> List[MatchJob]:
        """The deterministic job list of one Table 2 scenario."""
        n = self.config.n_subjects
        if scenario == "DMG":
            return enumerate_dmg_jobs(n)
        if scenario == "DDMG":
            return enumerate_ddmg_jobs(n)
        if scenario == "DMI":
            return sample_dmi_jobs(n, self.config.scaled_dmi_budget(), self._tree)
        if scenario == "DDMI":
            return sample_ddmi_jobs(n, self.config.scaled_ddmi_budget(), self._tree)
        raise ConfigurationError(f"unknown scenario {scenario!r}")

    def score_sets(self) -> Dict[str, ScoreSet]:
        """The four Table 2 score sets (generated or loaded from cache)."""
        if not self._score_sets:
            recorder = get_recorder()
            for scenario in ("DMG", "DDMG", "DMI", "DDMI"):
                with recorder.span(f"scores.{scenario}"):
                    self._score_sets[scenario] = self._scores_for(
                        scenario, self._jobs_for(scenario)
                    )
        return self._score_sets

    def cached_score_set(self, scenario: str) -> Optional[ScoreSet]:
        """One scenario's ScoreSet loaded purely from cache, or ``None``.

        Unlike :meth:`score_sets` this never computes anything: every
        device-pair shard of the scenario must already be cached.  The
        backing store of :func:`repro.api.load_scores`.
        """
        jobs = self._jobs_for(scenario)
        shards, missing, pair_indices = self._load_shards(scenario, jobs)
        if missing:
            return None
        return self._assemble_shards(shards, pair_indices, len(jobs))

    def d4_diagonal_genuine(self) -> ScoreSet:
        """Rolled-vs-slap genuine scores within the ten-print card.

        Not part of Table 3's DMG count (the paper counts D4 as a single
        set), but required by the D4xD4 cells of Tables 5 and 6.
        """
        if self._d4_diagonal is None:
            jobs = [
                (s, "D4", GALLERY_SET, s, "D4", probe_set_for("D4"))
                for s in range(self.config.n_subjects)
            ]
            self._d4_diagonal = self._scores_for("DMG-D4", jobs)
        return self._d4_diagonal

    def shard_key(self, scenario: str, gallery_device: str, probe_device: str) -> str:
        """Cache key of one scenario x device-pair score shard.

        Exposed so callers (and tests) can invalidate a single shard:
        ``study._cache.invalidate(study.shard_key("DMG", "D0", "D0"))``
        forces only that device pair to recompute on the next run.
        """
        return (
            f"{self.config.fingerprint()}-{self._protocol.fingerprint()}"
            f"-{scenario}-{gallery_device}x{probe_device}"
        )

    @staticmethod
    def _pair_partition(
        jobs: Sequence[MatchJob],
    ) -> Dict[Tuple[str, str], List[int]]:
        """Job indices per (gallery device, probe device), stable order."""
        pair_indices: Dict[Tuple[str, str], List[int]] = {}
        for k, job in enumerate(jobs):
            pair_indices.setdefault((job[1], job[4]), []).append(k)
        return pair_indices

    def _load_shards(
        self, scenario: str, jobs: Sequence[MatchJob]
    ) -> Tuple[
        Dict[Tuple[str, str], ScoreSet],
        List[Tuple[str, str]],
        Dict[Tuple[str, str], List[int]],
    ]:
        """Load every cached device-pair shard of ``scenario``.

        Returns (loaded shards, pairs still missing, job-index partition).
        A shard whose row count does not match the job partition is
        treated as missing — the cache is never a source of truth.
        """
        base_scenario = scenario.split("-")[0]
        pair_indices = self._pair_partition(jobs)
        shards: Dict[Tuple[str, str], ScoreSet] = {}
        missing: List[Tuple[str, str]] = []
        for pair, indices in pair_indices.items():
            cached = self._load_cached(
                base_scenario, self.shard_key(scenario, pair[0], pair[1])
            )
            if cached is not None and len(cached) == len(indices):
                shards[pair] = cached
            else:
                missing.append(pair)
        return shards, missing, pair_indices

    @staticmethod
    def _assemble_shards(
        shards: Dict[Tuple[str, str], ScoreSet],
        pair_indices: Dict[Tuple[str, str], List[int]],
        n_jobs: int,
    ) -> ScoreSet:
        """Reassemble per-pair shards into the original job order."""
        pairs = list(pair_indices)
        if len(pairs) == 1:
            return shards[pairs[0]]
        combined = ScoreSet.concatenate([shards[pair] for pair in pairs])
        positions = np.concatenate(
            [np.asarray(pair_indices[pair], dtype=np.int64) for pair in pairs]
        )
        # combined row i is job positions[i]; argsort inverts the
        # permutation so row k of the result is job k again.
        return combined.select(np.argsort(positions, kind="stable"))

    def _scores_for(self, scenario: str, jobs: Sequence[MatchJob]) -> ScoreSet:
        """Compute or load one scenario, cached shard-per-device-pair.

        Sharding makes cache re-entry granular: invalidating (or newly
        needing) one (gallery device, probe device) cell recomputes only
        that cell's jobs, not the whole scenario.
        """
        base_scenario = scenario.split("-")[0]
        recorder = get_recorder()
        shards, missing, pair_indices = self._load_shards(scenario, jobs)
        if shards:
            recorder.count("study.scores.shards_cached", len(shards))
        if not missing:
            recorder.count("study.scores.cached")
            _log.info(
                "score set loaded from cache",
                extra={"data": {"scenario": scenario, "jobs": len(jobs)}},
            )
            return self._assemble_shards(shards, pair_indices, len(jobs))
        recorder.count("study.scores.computed")
        recorder.count("study.scores.shards_computed", len(missing))
        missing_jobs = [
            jobs[k] for pair in missing for k in pair_indices[pair]
        ]
        _log.info(
            "score set computing",
            extra={
                "data": {
                    "scenario": scenario,
                    "jobs": len(missing_jobs),
                    "shards": len(missing),
                    "shards_cached": len(shards),
                }
            },
        )
        outcome = self._execute(missing_jobs, base_scenario, label=scenario)
        computed = outcome.score_set
        if outcome.complete:
            cursor = 0
            for pair in missing:
                count = len(pair_indices[pair])
                shard = computed.select(np.arange(cursor, cursor + count))
                shards[pair] = shard
                self._store_cached(
                    shard, self.shard_key(scenario, pair[0], pair[1])
                )
                cursor += count
            return self._assemble_shards(shards, pair_indices, len(jobs))
        # Salvage mode (fail_fast=False with skipped batches): return the
        # rows that did complete, but cache none of the affected pair
        # shards — an incomplete shard in the cache would silently
        # shortchange every later run, while recomputing is merely slow.
        recorder.count("study.jobs.skipped", outcome.skipped)
        _log.warning(
            "score set incomplete; skipped jobs dropped, shards not cached",
            extra={
                "data": {"scenario": scenario, "skipped": outcome.skipped}
            },
        )
        missing_global = np.asarray(
            [k for pair in missing for k in pair_indices[pair]], dtype=np.int64
        )
        parts = [shards[pair] for pair in shards]
        positions = [
            np.asarray(pair_indices[pair], dtype=np.int64) for pair in shards
        ]
        parts.append(computed)
        positions.append(missing_global[outcome.positions])
        return ScoreSet.assemble(parts, positions)

    def custom_scores(
        self,
        label: str,
        jobs: Sequence[MatchJob],
        finger: Optional[str] = None,
    ) -> ScoreSet:
        """Run an arbitrary job list (cached under ``label``).

        Used by the extension experiments: e.g. the multi-finger fusion
        benchmark re-runs the DMG jobs with ``finger="right_middle"``.
        ``label`` must be unique per distinct job list; the first dash-
        separated segment is used as the ScoreSet scenario.
        """
        effective_finger = finger if finger is not None else self.finger
        cache_key = (
            f"{self.config.fingerprint()}-{self._protocol.fingerprint()}"
            f"-{label}-{effective_finger}"
        )
        base_scenario = label.split("-")[0]
        cached = self._load_cached(base_scenario, cache_key)
        if cached is not None:
            return cached
        outcome = self._execute(
            jobs, base_scenario, finger=effective_finger, label=label
        )
        if outcome.complete:
            self._store_cached(outcome.score_set, cache_key)
        else:
            get_recorder().count("study.jobs.skipped", outcome.skipped)
            _log.warning(
                "custom score set incomplete; result not cached",
                extra={"data": {"label": label, "skipped": outcome.skipped}},
            )
        return outcome.score_set

    def _checkpoint_prefix(self, label: str, finger: str, n_chunks: int) -> str:
        """Cache-key prefix of one pooled execution's chunk checkpoints.

        Embeds the config and protocol fingerprints plus the chunk
        partition, so a checkpoint can never be resumed into a run whose
        chunk boundaries (or science) differ.
        """
        return (
            f"{self.config.fingerprint()}-{self._protocol.fingerprint()}"
            f"-ckpt-{label}-{finger}-{n_chunks}"
        )

    def _execute(
        self,
        jobs: Sequence[MatchJob],
        scenario: str,
        finger: Optional[str] = None,
        label: Optional[str] = None,
    ) -> ExecutionOutcome:
        collection = self.collection()
        effective_finger = finger if finger is not None else self.finger
        progress = self._progress_for(len(jobs), label or scenario)
        workers = resolve_worker_count(self.config.n_workers)
        if workers > 1 and len(jobs) >= 256:
            return self._execute_pooled(
                jobs, scenario, effective_finger, label or scenario,
                workers, progress,
            )
        score_set = run_jobs_batched(
            jobs, collection, self.matcher(), effective_finger, scenario,
            progress=progress,
        )
        if progress is not None:
            progress.finish()
        return ExecutionOutcome(
            score_set, np.arange(len(jobs), dtype=np.int64), len(jobs)
        )

    def _execute_pooled(
        self,
        jobs: Sequence[MatchJob],
        scenario: str,
        finger: str,
        task_label: str,
        workers: int,
        progress: Optional[ProgressReporter],
    ) -> ExecutionOutcome:
        """Supervised pooled execution with streaming chunk checkpoints."""
        recorder = get_recorder()
        chunk = max(64, len(jobs) // (workers * 4))
        bounds = list(range(0, len(jobs), chunk))
        chunks = [
            (list(jobs[start : start + chunk]), finger, scenario)
            for start in bounds
        ]
        task_keys = [f"{task_label}-chunk{i:04d}" for i in range(len(chunks))]
        ckpt_enabled = self._cache.enabled and len(chunks) > 1
        ckpt_prefix = self._checkpoint_prefix(task_label, finger, len(chunks))
        prefilled: Dict[int, ScoreSet] = {}
        if ckpt_enabled and self._resume:
            for i, (chunk_jobs, _, _) in enumerate(chunks):
                cached = self._load_cached(scenario, f"{ckpt_prefix}-{i:04d}")
                if cached is not None and len(cached) == len(chunk_jobs):
                    prefilled[i] = cached
            if prefilled:
                recorder.count("study.checkpoint.resumed", len(prefilled))
                _log.info(
                    "resumed from chunk checkpoints",
                    extra={
                        "data": {
                            "label": task_label,
                            "resumed": len(prefilled),
                            "chunks": len(chunks),
                        }
                    },
                )
                if progress is not None:
                    progress.update(sum(len(p) for p in prefilled.values()))
        submitted = [i for i in range(len(chunks)) if i not in prefilled]
        emitted = 0

        def _collect(result) -> None:
            # on_result fires once per submitted batch, in input order
            # (None marks a skip), so ``emitted`` tracks chunk identity.
            nonlocal emitted
            chunk_idx = submitted[emitted]
            emitted += 1
            if result is None:
                return
            if recorder.active:
                # Each chunk carries its worker-local metrics; merging
                # here keeps counters exact without shared state.
                part, snapshot = result
                recorder.merge_metrics(snapshot)
            else:
                part = result
            if ckpt_enabled:
                # Stream the finished chunk to disk: an interrupted run
                # restarted with resume=True recomputes only the rest.
                self._store_cached(part, f"{ckpt_prefix}-{chunk_idx:04d}")
                recorder.count("study.checkpoint.stored")
            if progress is not None:
                progress.update(len(part))

        results: List[object] = []
        if submitted:
            store: Optional[SharedTemplateStore] = None
            try:
                try:
                    # Workers map the template block instead of unpickling
                    # a full Collection copy each.
                    store = SharedTemplateStore.pack(self.collection())
                    source: Union[Collection, StoreHandle] = store.handle()
                except OSError:  # pragma: no cover - no shm on this platform
                    source = self.collection()
                worker_func = (
                    _run_job_chunk_with_metrics
                    if recorder.active
                    else _run_job_chunk
                )
                results = parallel_map_batched(
                    worker_func,
                    [chunks[i] for i in submitted],
                    n_workers=workers,
                    initializer=_init_score_worker,
                    initargs=(source, self.config.matcher_name, recorder.active),
                    on_result=_collect,
                    policy=self._retry_policy,
                    task_keys=[task_keys[i] for i in submitted],
                    fail_fast=self._fail_fast,
                )
            finally:
                if store is not None:
                    store.destroy()
        if progress is not None:
            progress.finish()
        parts: List[ScoreSet] = []
        positions: List[np.ndarray] = []
        cursor = 0
        for i, start in enumerate(bounds):
            if i in prefilled:
                part = prefilled[i]
            else:
                result = results[cursor]
                cursor += 1
                if result is None:  # skipped under fail_fast=False
                    continue
                part = result[0] if recorder.active else result
            parts.append(part)
            positions.append(
                np.arange(start, start + len(part), dtype=np.int64)
            )
        if parts:
            score_set = ScoreSet.concatenate(parts)
            done = np.concatenate(positions)
        else:
            score_set = _empty_score_set(scenario, self.config.matcher_name)
            done = np.empty(0, dtype=np.int64)
        outcome = ExecutionOutcome(score_set, done, len(jobs))
        if ckpt_enabled and outcome.complete:
            # The shard/label cache entries now supersede the chunk
            # checkpoints; drop them so a later resume never reads stale
            # chunks from a superseded partition.
            for i in range(len(chunks)):
                self._cache.invalidate(f"{ckpt_prefix}-{i:04d}")
        return outcome

    def _load_cached(self, scenario: str, key: str) -> Optional[ScoreSet]:
        arrays = self._cache.load(key)
        if arrays is None:
            return None
        return ScoreSet(
            scenario=scenario,
            matcher_name=self.config.matcher_name,
            scores=arrays["scores"],
            subject_gallery=arrays["subject_gallery"],
            subject_probe=arrays["subject_probe"],
            device_gallery=arrays["device_gallery"].astype("<U2"),
            device_probe=arrays["device_probe"].astype("<U2"),
            nfiq_gallery=arrays["nfiq_gallery"],
            nfiq_probe=arrays["nfiq_probe"],
        )

    def _store_cached(self, score_set: ScoreSet, key: str) -> None:
        self._cache.store(
            key,
            {
                "scores": score_set.scores,
                "subject_gallery": score_set.subject_gallery,
                "subject_probe": score_set.subject_probe,
                "device_gallery": score_set.device_gallery.astype("<U2"),
                "device_probe": score_set.device_probe.astype("<U2"),
                "nfiq_gallery": score_set.nfiq_gallery,
                "nfiq_probe": score_set.nfiq_probe,
            },
            meta={"config": self.config.describe()},
        )

    # ------------------------------------------------------------------
    # Scenario slicing
    # ------------------------------------------------------------------
    @staticmethod
    def _check_devices(*device_ids: str) -> None:
        from ..sensors.registry import DEVICE_ORDER

        for device_id in device_ids:
            if device_id not in DEVICE_ORDER:
                from ..runtime.errors import ConfigurationError

                raise ConfigurationError(
                    f"unknown device {device_id!r}; expected one of {DEVICE_ORDER}"
                )

    def genuine_scores(self, gallery_device: str, probe_device: str) -> ScoreSet:
        """Genuine scores for one (gallery, probe) device cell."""
        self._check_devices(gallery_device, probe_device)
        if gallery_device == probe_device:
            if gallery_device == "D4":
                return self.d4_diagonal_genuine()
            return self.score_sets()["DMG"].for_pair(gallery_device, probe_device)
        return self.score_sets()["DDMG"].for_pair(gallery_device, probe_device)

    def impostor_scores(self, gallery_device: str, probe_device: str) -> ScoreSet:
        """Impostor scores for one (gallery, probe) device cell."""
        self._check_devices(gallery_device, probe_device)
        if gallery_device == probe_device:
            return self.score_sets()["DMI"].for_pair(gallery_device, probe_device)
        return self.score_sets()["DDMI"].for_pair(gallery_device, probe_device)

    def genuine_vector(self, gallery_device: str, probe_device: str) -> np.ndarray:
        """Per-subject genuine score vector, subject-ordered.

        The unit of Table 4's Kendall tests: element *s* is subject *s*'s
        genuine score in the (gallery, probe) scenario.
        """
        cell = self.genuine_scores(gallery_device, probe_device)
        order = np.argsort(cell.subject_gallery)
        subjects = cell.subject_gallery[order]
        if not np.array_equal(subjects, np.arange(self.config.n_subjects)):
            raise RuntimeError(
                f"genuine cell ({gallery_device}, {probe_device}) does not "
                "contain exactly one score per subject"
            )
        return cell.scores[order]

    # ------------------------------------------------------------------
    # Analyses (one per paper artifact; implementations live in the
    # dedicated analysis modules)
    # ------------------------------------------------------------------
    def kendall_matrix(self) -> Dict[Tuple[str, str], KendallResult]:
        """Table 4: Kendall tests of (DX, DX) vs (DX, DY) genuine vectors."""
        from .kendall_analysis import kendall_matrix

        return kendall_matrix(self)

    def fnmr_matrix(
        self, target_fmr: float = 1e-4, max_nfiq: Optional[int] = None
    ) -> np.ndarray:
        """Tables 5/6: FNMR at fixed FMR for every (gallery, probe) cell."""
        from .error_rates import fnmr_interoperability_matrix

        return fnmr_interoperability_matrix(self, target_fmr, max_nfiq)

    def low_score_quality_surface(self, cross_device: bool, score_below: float = 10.0):
        """Figure 5 panel: low-genuine-score frequency by quality pair."""
        from .quality_analysis import low_score_quality_surface

        return low_score_quality_surface(self, cross_device, score_below)

    def demographics(self) -> Dict[str, Dict[str, int]]:
        """Figure 1: age and ethnicity histograms of the population."""
        from ..synthesis.population import Population

        return Population(self.config).demographics_table()


__all__ = ["InteroperabilityStudy"]
