"""Score-cache sharding: per scenario x device-pair granularity.

Invalidating one shard must force recomputation of only that shard; every
other shard is served from cache and the reassembled score sets are
bit-identical to a cold run.
"""

import numpy as np
import pytest

from repro.core.study import InteroperabilityStudy
from repro.runtime import ScoreCache, StudyConfig
from repro.runtime.telemetry import disable_telemetry, enable_telemetry


@pytest.fixture()
def cached_cfg(tmp_path):
    return StudyConfig(n_subjects=6, master_seed=7, cache_dir=str(tmp_path))


@pytest.fixture()
def telemetry():
    recorder = enable_telemetry()
    yield recorder
    disable_telemetry()


def _counters(recorder):
    metrics = recorder.metrics
    return {
        "cached": metrics.counter_value("study.scores.cached"),
        "computed": metrics.counter_value("study.scores.computed"),
        "shards_cached": metrics.counter_value("study.scores.shards_cached"),
        "shards_computed": metrics.counter_value(
            "study.scores.shards_computed"
        ),
    }


class TestShardedCache:
    def test_warm_rerun_is_fully_shard_served(self, cached_cfg, telemetry):
        baseline = InteroperabilityStudy(cached_cfg).score_sets()
        before = _counters(telemetry)
        rerun = InteroperabilityStudy(cached_cfg).score_sets()
        after = _counters(telemetry)
        assert after["cached"] - before["cached"] == len(baseline)
        assert after["shards_computed"] == before["shards_computed"]
        for scenario, scores in baseline.items():
            np.testing.assert_array_equal(
                scores.scores, rerun[scenario].scores
            )

    def test_invalidating_one_shard_recomputes_only_it(
        self, cached_cfg, telemetry
    ):
        study = InteroperabilityStudy(cached_cfg)
        baseline = study.score_sets()

        cache = ScoreCache(cached_cfg.cache_dir)
        assert cache.invalidate(study.shard_key("DDMG", "D0", "D1"))
        fresh = InteroperabilityStudy(cached_cfg)
        assert fresh.cached_score_set("DDMG") is None
        assert fresh.cached_score_set("DMG") is not None

        before = _counters(telemetry)
        rerun = fresh.score_sets()
        after = _counters(telemetry)
        assert after["shards_computed"] - before["shards_computed"] == 1
        assert after["computed"] - before["computed"] == 1
        assert after["cached"] - before["cached"] == len(baseline) - 1
        for scenario, scores in baseline.items():
            np.testing.assert_array_equal(
                scores.scores, rerun[scenario].scores
            )
            np.testing.assert_array_equal(
                scores.subject_gallery, rerun[scenario].subject_gallery
            )

    def test_cached_score_set_misses_on_unseen_config(self, tmp_path):
        cfg = StudyConfig(
            n_subjects=5, master_seed=11, cache_dir=str(tmp_path)
        )
        assert InteroperabilityStudy(cfg).cached_score_set("DMG") is None
