"""T5 — Table 5: interoperability FNMR matrix at fixed FMR of 0.01%.

Expected shape (paper): diagonal (intra-device) FNMR lower than
off-diagonal (inter-device) on average, with the D4 row/column worst
among probes and the D4xD4 diagonal excellent; the paper itself reports
{D1,D1} and {D3,D3} as exceptions to diagonal dominance.
"""

import numpy as np

from repro.api import (
    diagonal_dominance_violations,
    fnmr_interoperability_matrix,
    mean_interoperability_penalty,
    render_fnmr_matrix,
    TABLE5_FMR,
)


def test_table5_fnmr_matrix(benchmark, study, record_artifact):
    study.score_sets()

    matrix = benchmark(fnmr_interoperability_matrix, study, TABLE5_FMR)
    text = render_fnmr_matrix(matrix, "Table 5: FNMR at fixed FMR of 0.01%")
    penalty = mean_interoperability_penalty(matrix)
    violations = diagonal_dominance_violations(matrix)
    text += f"\n\nmean interoperability penalty: {penalty:+.4f}"
    text += f"\ndiagonal-dominance exceptions: {violations or 'none'}"
    text += "\npaper's exceptions: ['D1', 'D3']"
    record_artifact(text)
    print("\n" + text)

    assert matrix.shape == (5, 5)
    assert penalty > 0  # interoperability costs FNMR on average
    # The D4 column is the worst probe for live-scan galleries.
    live = matrix[:4, :]
    d4_col = np.nanmean(live[:, 4])
    others = [live[i, j] for i in range(4) for j in range(4) if i != j]
    assert d4_col >= np.nanmean(others)
