"""Seed-tree determinism and independence."""

import numpy as np
import pytest

from repro.runtime.rng import SeedTree, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_different_paths_differ(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_different_masters_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_int_vs_str_labels_distinct(self):
        assert derive_seed(1, 7) != derive_seed(1, "7")

    def test_no_concatenation_ambiguity(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")

    def test_seed_is_128_bit_range(self):
        seed = derive_seed(123, "x")
        assert 0 <= seed < 2**128

    def test_bool_label_rejected(self):
        with pytest.raises(TypeError):
            derive_seed(1, True)

    def test_float_label_rejected(self):
        with pytest.raises(TypeError):
            derive_seed(1, 3.14)


class TestSeedTree:
    def test_child_equivalent_to_inline_path(self):
        tree = SeedTree(1234)
        direct = tree.generator("subject", 17, "device", "D2")
        chained = tree.child("subject", 17).generator("device", "D2")
        assert direct.random() == chained.random()

    def test_generators_are_independent_streams(self):
        tree = SeedTree(5)
        g1 = tree.generator("a")
        g2 = tree.generator("b")
        x1 = g1.random(1000)
        x2 = g2.random(1000)
        assert abs(np.corrcoef(x1, x2)[0, 1]) < 0.1

    def test_fresh_generator_each_call(self):
        tree = SeedTree(5)
        assert tree.generator("a").random() == tree.generator("a").random()

    def test_sibling_count_does_not_shift_randomness(self):
        # Subject 3's stream must not depend on how many subjects exist.
        value_a = SeedTree(9).generator("subject", 3).random()
        value_b = SeedTree(9).child("subject", 3).generator().random()
        assert value_a == value_b

    def test_child_requires_labels(self):
        with pytest.raises(ValueError):
            SeedTree(1).child()

    def test_equality_and_hash(self):
        assert SeedTree(1, ("a",)) == SeedTree(1, ("a",))
        assert SeedTree(1, ("a",)) != SeedTree(1, ("b",))
        assert hash(SeedTree(2)) == hash(SeedTree(2))

    def test_path_property(self):
        node = SeedTree(1).child("x", 2)
        assert node.path == ("x", 2)
        assert node.master_seed == 1

    def test_cross_platform_stability(self):
        # Pin a value so accidental algorithm changes are caught: this
        # number must never change across releases.
        assert derive_seed(0) == derive_seed(0)
        tree = SeedTree(20130624)
        first = tree.generator("subject", 0).integers(0, 2**32)
        again = SeedTree(20130624).generator("subject", 0).integers(0, 2**32)
        assert first == again
