#!/usr/bin/env python3
"""Which sensor captured this fingerprint?  (Poh et al.'s p(d|q).)

Section II of the paper describes Poh, Kittler & Bourlai's mitigation
for unknown-device matching: infer the capture device from the image's
quality measures via per-device Gaussian mixture models, then condition
the matching decision on the inferred device.

This example trains the model on set-0 impressions (device labels
known at enrollment) and evaluates identification accuracy on set-1
impressions, printing the confusion matrix.

Run:
    python examples/device_forensics.py
"""

import numpy as np

from repro.api import (
    DEVICE_ORDER,
    DEVICE_PROFILES,
    DeviceInferenceModel,
    InteroperabilityStudy,
    StudyConfig,
)


def main() -> None:
    config = StudyConfig.from_environment(n_subjects=40, n_workers=4)
    study = InteroperabilityStudy(config)
    collection = study.collection()
    n = config.n_subjects

    features_by_device = {
        device: [
            collection.get(sid, "right_index", device, 0).features
            for sid in range(n)
        ]
        for device in DEVICE_ORDER
    }
    model = DeviceInferenceModel(n_components=2).fit(
        features_by_device, np.random.default_rng(7)
    )

    confusion = {d: {p: 0 for p in DEVICE_ORDER} for d in DEVICE_ORDER}
    hits = total = 0
    for device in DEVICE_ORDER:
        for sid in range(n):
            features = collection.get(sid, "right_index", device, 1).features
            predicted = model.predict(features)
            confusion[device][predicted] += 1
            hits += predicted == device
            total += 1

    print("Device inference from quality measures, p(d|q)")
    print(f"Top-1 accuracy: {hits / total:.2%} (chance = {1 / len(DEVICE_ORDER):.0%})")
    print()
    header = " " * 10 + "".join(f"{d:>6}" for d in DEVICE_ORDER)
    print("true \\ predicted")
    print(header)
    for device in DEVICE_ORDER:
        row = "".join(f"{confusion[device][p]:>6}" for p in DEVICE_ORDER)
        print(f"{device:>10}" + row)
    print()

    print("Posterior example — an ink-card impression:")
    example = collection.get(0, "right_index", "D4", 1).features
    posterior = model.posterior(example)
    for device, prob in sorted(posterior.items(), key=lambda kv: -kv[1]):
        print(f"  p(d={device} | q) = {prob:.3f}   ({DEVICE_PROFILES[device].model})")
    print()
    print(
        "Ink cards are easy to spot from quality evidence alone; the four"
        " optical live-scans are harder to tell apart — consistent with"
        " Poh et al.'s observation that quality measures carry device"
        " identity information."
    )


if __name__ == "__main__":
    main()
