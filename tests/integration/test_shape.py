"""The paper's qualitative findings, asserted end-to-end.

These are the headline claims of the study; each test names the claim it
checks.  They run on the 36-subject medium study — large enough for the
statistical shape to be stable, small enough for CI.
"""

import itertools

import numpy as np
import pytest

from repro.core.error_rates import mean_interoperability_penalty
from repro.sensors.registry import DEVICE_ORDER, LIVESCAN_DEVICES


class TestGenuineScoreFindings:
    def test_same_device_genuine_higher_than_cross(self, medium_study):
        """'Genuine match rates are always higher if the gallery and the
        probe image are acquired by the same sensor.'"""
        sets = medium_study.score_sets()
        for device in LIVESCAN_DEVICES:
            same = sets["DMG"].for_pair(device, device).scores.mean()
            cross = [
                sets["DDMG"].for_pair(device, other).scores.mean()
                for other in DEVICE_ORDER
                if other != device
            ]
            assert same > np.mean(cross)

    def test_tenprint_probes_score_lowest(self, medium_study):
        """Figure 4: 'the lowest match scores representing the similarity
        with the ink-based ten-print scans as probes'."""
        sets = medium_study.score_sets()
        for gallery in LIVESCAN_DEVICES:
            means = {
                probe: sets["DDMG"].for_pair(gallery, probe).scores.mean()
                for probe in DEVICE_ORDER
                if probe != gallery
            }
            assert min(means, key=means.get) == "D4"

    def test_livescan_beats_tenprint_everywhere(self, medium_study):
        """'Matching scores of any Live-scan devices are higher than those
        obtained from ten-prints.'"""
        sets = medium_study.score_sets()
        for gallery in LIVESCAN_DEVICES:
            d4_mean = sets["DDMG"].for_pair(gallery, "D4").scores.mean()
            for probe in LIVESCAN_DEVICES:
                if probe == gallery:
                    continue
                assert sets["DDMG"].for_pair(gallery, probe).scores.mean() > d4_mean


class TestImpostorFindings:
    def test_impostor_ceiling_near_seven(self, medium_study):
        """'The impostor scores never go higher than 7' (both scenarios)."""
        sets = medium_study.score_sets()
        assert sets["DMI"].scores.max() < 8.5
        assert sets["DDMI"].scores.max() < 8.5

    def test_impostors_unaffected_by_device_diversity(self, medium_study):
        """'The false-match-rates do not seem to be affected by
        interoperability.'"""
        sets = medium_study.score_sets()
        assert sets["DMI"].scores.mean() == pytest.approx(
            sets["DDMI"].scores.mean(), abs=0.5
        )

    def test_impostor_mass_concentrated_at_zero(self, medium_study):
        """Figure 3's bin counts: the 0-1 bin dominates impostors."""
        sets = medium_study.score_sets()
        for scenario in ("DMI", "DDMI"):
            scores = sets[scenario].scores
            assert np.mean(scores < 1.0) > 0.4
            assert np.mean(scores < 3.0) > 0.85


class TestOverlapFinding:
    def test_distribution_overlap_greater_for_diverse_sensors(self, medium_study):
        """'The overlap of genuine and impostor score distributions is
        greater when they were acquired from diverse sensors.'

        Operationalized as separability: the d-prime between genuine and
        impostor scores must be lower (more overlap) in the diverse-
        device scenario than in the same-device scenario.
        """
        from repro.calibration.fusion import d_prime

        sets = medium_study.score_sets()
        same = d_prime(sets["DMG"].scores, sets["DMI"].scores)
        cross = d_prime(sets["DDMG"].scores, sets["DDMI"].scores)
        assert cross < same

    def test_more_genuine_below_seven_for_diverse(self, medium_study):
        """'The number of genuine scores with values of less than 7 is
        higher in diverse vs. non-diverse sensor choices.'"""
        sets = medium_study.score_sets()
        same_rate = np.mean(sets["DMG"].scores < 7.0)
        cross_rate = np.mean(sets["DDMG"].scores < 7.0)
        assert cross_rate > same_rate


class TestFnmrFindings:
    def test_interoperability_penalty_positive(self, medium_study):
        """Table 5: 'FNMR in intra-device match scenarios were found to be
        lower than those in inter-device matching' (on average; the paper
        itself reports exceptions)."""
        matrix = medium_study.fnmr_matrix(1e-3)
        assert mean_interoperability_penalty(matrix) > 0

    def test_d4_column_worst(self, medium_study):
        """Ten-print probes give the worst FNMR for live-scan galleries."""
        matrix = medium_study.fnmr_matrix(1e-3)
        livescan_rows = matrix[:4, :]
        d4_column_mean = np.nanmean(livescan_rows[:, 4])
        other_off_diag = [
            livescan_rows[i, j]
            for i in range(4)
            for j in range(4)
            if i != j and not np.isnan(livescan_rows[i, j])
        ]
        assert d4_column_mean >= np.mean(other_off_diag)


class TestKendallFindings:
    def test_diagonal_p_values_vanish(self, medium_study):
        """Table 4's diagonal: self-correlation p ~ 0."""
        results = medium_study.kendall_matrix()
        for device in LIVESCAN_DEVICES:
            assert results[(device, device)].p_value < 1e-15

    def test_matrix_is_asymmetric(self, medium_study):
        """'The results of Kendall's rank test are not symmetric.'"""
        results = medium_study.kendall_matrix()
        asymmetries = [
            abs(np.log10(results[(a, b)].p_value + 1e-300)
                - np.log10(results[(b, a)].p_value + 1e-300))
            for a, b in itertools.combinations(LIVESCAN_DEVICES, 2)
        ]
        assert max(asymmetries) > 0.5

    def test_cross_device_correlations_weaker_than_diagonal(self, medium_study):
        results = medium_study.kendall_matrix()
        for row in LIVESCAN_DEVICES:
            for col in DEVICE_ORDER:
                if row != col:
                    assert results[(row, col)].tau < 1.0


class TestQualityFindings:
    def test_quality_filtering_lowers_fnmr(self, medium_study):
        """Table 6 vs Table 5: good-quality comparisons have (weakly)
        better FNMR at a common operating point."""
        full = medium_study.fnmr_matrix(1e-3)
        filtered = medium_study.fnmr_matrix(1e-3, max_nfiq=2)
        both = ~np.isnan(full) & ~np.isnan(filtered)
        assert np.nanmean(filtered[both]) <= np.nanmean(full[both]) + 1e-9

    def test_low_scores_need_poor_quality_somewhere(self, medium_study):
        """Figure 5: the *rate* of low genuine cross-device scores rises
        as the worse of the two image qualities degrades — the paper's
        operational recommendation that cross-device matching needs both
        images at quality 1-2."""
        ddmg = medium_study.score_sets()["DDMG"]
        worst = np.maximum(ddmg.nfiq_gallery, ddmg.nfiq_probe)
        good = ddmg.scores[worst <= 2]
        poor = ddmg.scores[worst >= 3]
        assert len(good) > 20 and len(poor) > 20
        assert np.mean(poor < 10.0) > np.mean(good < 10.0)
