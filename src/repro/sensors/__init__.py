"""Acquisition simulation: devices D0–D4 of the paper's Table 1.

Replaces the physical capture hardware with parameterized sensor models.
The package's central idea is the *device signature warp*: a fixed
smooth geometric distortion unique to each device that cancels within a
device and persists across devices — the study's interoperability
mechanism, made explicit and ablatable.
"""

from .base import Impression, Sensor
from .distortion import (
    RigidPlacement,
    SmoothWarpField,
    device_signature_field,
    relative_warp_rms,
    sample_placement,
)
from .inkcard import InkCardSensor
from .noise import (
    PresentationConditions,
    contact_radii_mm,
    detection_probability,
    quality_conditions_factor,
    sample_conditions,
)
from .optical import OpticalSensor
from .protocol import (
    Collection,
    ImpressionKey,
    ProtocolSettings,
    acquire_subject_session,
    build_sensor,
)
from .registry import (
    DEVICE_ORDER,
    DEVICE_PROFILES,
    LIVESCAN_DEVICES,
    DeviceProfile,
    get_profile,
    table1_rows,
)

__all__ = [
    "Sensor",
    "Impression",
    "OpticalSensor",
    "InkCardSensor",
    "RigidPlacement",
    "SmoothWarpField",
    "device_signature_field",
    "relative_warp_rms",
    "sample_placement",
    "PresentationConditions",
    "sample_conditions",
    "contact_radii_mm",
    "detection_probability",
    "quality_conditions_factor",
    "Collection",
    "ImpressionKey",
    "ProtocolSettings",
    "acquire_subject_session",
    "build_sensor",
    "DeviceProfile",
    "DEVICE_PROFILES",
    "DEVICE_ORDER",
    "LIVESCAN_DEVICES",
    "get_profile",
    "table1_rows",
]
