"""Two-stage /identify at scale: descriptor prefilter recall vs speedup.

Usage::

    PYTHONPATH=src python benchmarks/bench_identify_index.py \
        --gallery-size 100000 --out identify_index_pr7.json

Synthesizes a ``--gallery-size`` gallery of random-but-plausible
templates: two capture-device views per finger, enrolled with gentle
capture noise (enrollment is NFIQ-gated in the serving layer), while
every probe takes the full cross-device re-capture perturbation — pose
change, placement jitter, 15% minutia dropout, spurious detections —
so the shortlist has to survive a genuine device change.  Measures the
two quantities the two-stage design trades against each other:

* **recall@K** — how often the exact matcher's true mate survives the
  descriptor top-K shortlist, over ``--recall-probes`` probes and a
  sweep of K.  The prefilter never touches scores, so recall is the
  *only* way two-stage can differ from exhaustive.
* **speedup** — wall-clock of a full two-stage identify (probe
  descriptor + vectorized top-K + K exact rescores) against the
  exhaustive oracle (one exact match per gallery entry).  Exhaustive at
  100k is ~2 minutes *per probe*, so the oracle arm times
  ``--oracle-probes`` probes and additionally asserts two-stage top-1
  agreement on each.

The record lands in ``benchmarks/output/`` as JSON: the recall@K table,
both latencies, the speedup, and the oracle-agreement count.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from _bench_common import OUTPUT_DIR
from repro.api import BioEngineMatcher
from repro.core.identification import (
    DEFAULT_CANDIDATE_K,
    TwoStageIdentifier,
    rank_candidates,
)
from repro.core.prefilter import PrefilterIndex, descriptor_vector
from repro.matcher.types import template_from_arrays

K_SWEEP = (8, 16, 32, 64)

# Enrollment captures are NFIQ-gated by the serving layer, so gallery
# views carry gentle capture noise; probes take the full re-capture
# perturbation (the `_device_view` defaults).
ENROLL_NOISE = {"drop": 0.05, "jitter_px": 0.5, "spurious": 1}


def _random_template(rng, n_min=25, n_max=60):
    n = int(rng.integers(n_min, n_max + 1))
    return template_from_arrays(
        positions_px=rng.uniform((30.0, 30.0), (270.0, 370.0), size=(n, 2)),
        angles=rng.uniform(0.0, 2.0 * np.pi, size=n),
        kinds=rng.choice((1, 2), size=n, p=(0.6, 0.4)),
        qualities=rng.integers(40, 100, size=n),
        width_px=300,
        height_px=400,
    )


def _device_view(template, rng, drop=0.15, jitter_px=1.5, spurious=3):
    """The same finger captured elsewhere: new pose, jitter, dropout."""
    positions = template.positions_px()
    angles = template.angles()
    kinds = template.kinds()
    qualities = template.qualities()

    theta = float(rng.uniform(-0.4, 0.4))
    rotation = np.array(
        [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
    )
    center = positions.mean(axis=0)
    positions = (positions - center) @ rotation.T + center
    positions = positions + rng.uniform(-25.0, 25.0, size=2)
    positions = positions + rng.normal(0.0, jitter_px, size=positions.shape)
    angles = angles + theta

    keep = rng.random(len(positions)) > drop
    if keep.sum() < 8:
        keep[:] = True
    positions, angles = positions[keep], angles[keep]
    kinds, qualities = kinds[keep], qualities[keep]

    n_extra = int(rng.integers(0, spurious + 1))
    if n_extra:
        positions = np.vstack(
            [positions, rng.uniform((30.0, 30.0), (270.0, 370.0), (n_extra, 2))]
        )
        angles = np.concatenate([angles, rng.uniform(0.0, 2 * np.pi, n_extra)])
        kinds = np.concatenate([kinds, rng.choice((1, 2), n_extra)])
        qualities = np.concatenate([qualities, rng.integers(40, 100, n_extra)])

    return template_from_arrays(
        positions_px=positions,
        angles=angles,
        kinds=kinds,
        qualities=qualities,
        width_px=300,
        height_px=400,
    )


def _build_gallery(n_fingers, rng):
    """``n_fingers`` base templates, each enrolled from two devices.

    Enrollment views use ``ENROLL_NOISE`` (quality-gated capture);
    probes drawn later use the harsher ``_device_view`` defaults.
    """
    fingers = []
    index = PrefilterIndex()
    keys = []
    started = time.perf_counter()
    for i in range(n_fingers):
        finger = _random_template(rng)
        fingers.append(finger)
        for device in ("D0", "D1"):
            key = f"{device}/id-{i:06d}"
            index.add(
                key,
                descriptor_vector(_device_view(finger, rng, **ENROLL_NOISE)),
            )
            keys.append(key)
        if (i + 1) % 5000 == 0:
            elapsed = time.perf_counter() - started
            print(
                f"  built {2 * (i + 1):>7d}/{2 * n_fingers} gallery entries "
                f"({elapsed:.0f}s)",
                flush=True,
            )
    return fingers, index, keys


def _measure_recall(fingers, index, rng, n_probes):
    """Fraction of probes whose mate (either device view) survives top-K."""
    hits = {k: 0 for k in K_SWEEP}
    ranks = []
    probe_ids = rng.choice(len(fingers), size=n_probes, replace=False)
    prefilter_times = []
    for identity in probe_ids:
        probe = _device_view(fingers[identity], rng)
        started = time.perf_counter()
        survivors = index.top_k(descriptor_vector(probe), max(K_SWEEP))
        prefilter_times.append(time.perf_counter() - started)
        mate = f"/id-{identity:06d}"
        mate_rank = next(
            (c.rank for c in survivors if c.key.endswith(mate)), None
        )
        ranks.append(mate_rank)
        for k in K_SWEEP:
            if mate_rank is not None and mate_rank <= k:
                hits[k] += 1
    found = [r for r in ranks if r is not None]
    return {
        "probes": int(n_probes),
        "recall_at": {str(k): round(hits[k] / n_probes, 4) for k in K_SWEEP},
        "mate_rank_mean": round(float(np.mean(found)), 2) if found else None,
        "mate_rank_max": int(max(found)) if found else None,
        "missed_beyond_max_k": int(sum(1 for r in ranks if r is None)),
        "prefilter_p50_ms": round(
            1000.0 * float(np.percentile(prefilter_times, 50)), 2
        ),
    }


def _measure_speedup(fingers, gallery, matcher, rng, n_oracle, candidate_k):
    """Exhaustive-vs-two-stage wall clock plus top-1 agreement."""
    identifier = TwoStageIdentifier(matcher, gallery, candidate_k=candidate_k)

    two_stage_times = []
    exhaustive_times = []
    agreements = 0
    probe_ids = rng.choice(len(fingers), size=n_oracle, replace=False)
    for i, identity in enumerate(probe_ids):
        probe = _device_view(fingers[identity], rng)

        started = time.perf_counter()
        fast, report = identifier.identify(probe, max_candidates=5)
        two_stage_times.append(time.perf_counter() - started)

        started = time.perf_counter()
        exhaustive = rank_candidates(matcher, probe, gallery)
        exhaustive_times.append(time.perf_counter() - started)

        if fast[0].identity == exhaustive[0].identity:
            agreements += 1
        print(
            f"  oracle probe {i + 1}/{n_oracle}: "
            f"two-stage {two_stage_times[-1] * 1000:.0f}ms, "
            f"exhaustive {exhaustive_times[-1]:.0f}s, "
            f"top1 {'agrees' if fast[0].identity == exhaustive[0].identity else 'DIFFERS'}",
            flush=True,
        )

    two_stage_mean = float(np.mean(two_stage_times))
    exhaustive_mean = float(np.mean(exhaustive_times))
    return {
        "oracle_probes": int(n_oracle),
        "candidate_k": int(candidate_k),
        "two_stage_mean_s": round(two_stage_mean, 4),
        "exhaustive_mean_s": round(exhaustive_mean, 2),
        "speedup": round(exhaustive_mean / two_stage_mean, 1),
        "two_stage_throughput_per_s": round(1.0 / two_stage_mean, 2),
        "exhaustive_throughput_per_s": round(1.0 / exhaustive_mean, 4),
        "oracle_top1_agreement": f"{agreements}/{n_oracle}",
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--gallery-size", type=int, default=100_000,
                        help="total gallery entries (fingers x 2 devices)")
    parser.add_argument("--recall-probes", type=int, default=400)
    parser.add_argument("--oracle-probes", type=int, default=3)
    parser.add_argument("--candidate-k", type=int, default=DEFAULT_CANDIDATE_K)
    parser.add_argument("--seed", type=int, default=20130624)
    parser.add_argument("--label", default="two-stage identify index")
    parser.add_argument("--out", default="identify_index.json")
    args = parser.parse_args()

    n_fingers = max(1, args.gallery_size // 2)
    rng = np.random.default_rng(args.seed)
    matcher = BioEngineMatcher()

    print(f"building {2 * n_fingers}-entry gallery ...", flush=True)
    started = time.perf_counter()
    fingers, index, keys = _build_gallery(n_fingers, rng)
    build_seconds = time.perf_counter() - started

    print(f"measuring recall over {args.recall_probes} probes ...", flush=True)
    recall = _measure_recall(fingers, index, rng, args.recall_probes)
    print(f"  recall@K: {recall['recall_at']}", flush=True)

    # The oracle arm needs the actual templates; rebuild the (smaller)
    # dict the identifier scores against from fresh device views so its
    # index matches the recall index's distribution, not its RNG state.
    print("building oracle gallery dict ...", flush=True)
    oracle_rng = np.random.default_rng(args.seed + 1)
    gallery = {}
    for i, finger in enumerate(fingers):
        for device in ("D0", "D1"):
            gallery[f"{device}/id-{i:06d}"] = _device_view(
                finger, oracle_rng, **ENROLL_NOISE
            )

    print(f"timing {args.oracle_probes} exhaustive oracle probes ...", flush=True)
    speed = _measure_speedup(
        fingers, gallery, matcher, oracle_rng, args.oracle_probes,
        args.candidate_k,
    )

    record = {
        "label": args.label,
        "gallery_size": 2 * n_fingers,
        "devices_per_finger": 2,
        "seed": args.seed,
        "gallery_build_seconds": round(build_seconds, 1),
        "recall": recall,
        "speed": speed,
    }

    OUTPUT_DIR.mkdir(exist_ok=True)
    out_path = OUTPUT_DIR / args.out
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))

    k = str(args.candidate_k)
    if k in recall["recall_at"]:
        assert recall["recall_at"][k] >= 0.99, (
            f"recall@{k} below the 0.99 floor: {recall['recall_at'][k]}"
        )
    assert speed["speedup"] >= 10.0, f"speedup below 10x: {speed['speedup']}"
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
