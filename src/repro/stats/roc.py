"""Biometric error-rate computation: FMR, FNMR, ROC/DET curves, EER.

Terminology follows the paper (and ISO/IEC 19795):

* **FMR** (false match rate) — fraction of *impostor* comparisons whose
  score reaches the decision threshold.
* **FNMR** (false non-match rate) — fraction of *genuine* comparisons
  whose score falls below the threshold.
* **FNMR @ FMR** — the operating points of Tables 5 and 6: pick the
  threshold where the impostor distribution yields the target FMR, then
  read off the genuine miss rate.

All functions treat "score >= threshold" as a match decision, matching
similarity-score conventions (higher = more similar).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


def _as_scores(values: Sequence[float], name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError(f"{name} score set is empty")
    if np.any(~np.isfinite(arr)):
        raise ValueError(f"{name} scores must be finite")
    return arr


def fmr_at_threshold(impostor_scores: Sequence[float], threshold: float) -> float:
    """Fraction of impostor scores at or above ``threshold``."""
    scores = _as_scores(impostor_scores, "impostor")
    return float(np.count_nonzero(scores >= threshold)) / scores.size


def fnmr_at_threshold(genuine_scores: Sequence[float], threshold: float) -> float:
    """Fraction of genuine scores strictly below ``threshold``."""
    scores = _as_scores(genuine_scores, "genuine")
    return float(np.count_nonzero(scores < threshold)) / scores.size


def threshold_at_fmr(impostor_scores: Sequence[float], target_fmr: float) -> float:
    """Smallest threshold whose FMR does not exceed ``target_fmr``.

    With ``m`` impostor scores, achievable FMR values are ``k/m``; this
    returns the threshold realizing the largest achievable FMR that is
    ``<= target_fmr`` (the conservative operating point used when a paper
    states "at fixed FMR of 0.01%").
    """
    if not 0.0 <= target_fmr <= 1.0:
        raise ValueError(f"target_fmr must be in [0, 1], got {target_fmr}")
    scores = np.sort(_as_scores(impostor_scores, "impostor"))[::-1]
    m = scores.size
    # Largest k with k/m <= target_fmr.
    k = int(np.floor(target_fmr * m + 1e-12))
    if k <= 0:
        # No impostor may match: threshold just above the impostor maximum.
        return float(np.nextafter(scores[0], np.inf))
    # Threshold = the k-th highest impostor score admits exactly the top k
    # (ties may admit more; step down until the realized FMR fits).
    threshold = float(scores[k - 1])
    while fmr_at_threshold(scores, threshold) > target_fmr:
        threshold = float(np.nextafter(threshold, np.inf))
        above = scores[scores >= threshold]
        if above.size == 0:
            break
    return threshold


def fnmr_at_fmr(
    genuine_scores: Sequence[float],
    impostor_scores: Sequence[float],
    target_fmr: float,
) -> float:
    """FNMR at the threshold fixed by ``target_fmr`` — Tables 5/6 cells."""
    threshold = threshold_at_fmr(impostor_scores, target_fmr)
    return fnmr_at_threshold(genuine_scores, threshold)


@dataclass(frozen=True)
class RocCurve:
    """A receiver-operating-characteristic sweep.

    Attributes
    ----------
    thresholds:
        Candidate thresholds, ascending.
    fmr:
        False-match rate at each threshold.
    fnmr:
        False-non-match rate at each threshold.
    """

    thresholds: np.ndarray
    fmr: np.ndarray
    fnmr: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.thresholds) == len(self.fmr) == len(self.fnmr)):
            raise ValueError("ROC arrays must have equal length")

    def equal_error_rate(self) -> float:
        """EER: the rate where FMR and FNMR cross, linearly interpolated."""
        diff = self.fmr - self.fnmr
        # diff starts >= 0 (low threshold: everything matches) and ends <= 0.
        sign_change = np.where(np.diff(np.sign(diff)) != 0)[0]
        if sign_change.size == 0:
            # No crossing inside the sweep; report the closest point.
            idx = int(np.argmin(np.abs(diff)))
            return float((self.fmr[idx] + self.fnmr[idx]) / 2.0)
        i = int(sign_change[0])
        d0, d1 = diff[i], diff[i + 1]
        if d0 == d1:
            frac = 0.0
        else:
            frac = d0 / (d0 - d1)
        fmr_i = self.fmr[i] + frac * (self.fmr[i + 1] - self.fmr[i])
        fnmr_i = self.fnmr[i] + frac * (self.fnmr[i + 1] - self.fnmr[i])
        return float((fmr_i + fnmr_i) / 2.0)


def roc_curve(
    genuine_scores: Sequence[float],
    impostor_scores: Sequence[float],
    n_points: int = 0,
) -> RocCurve:
    """Sweep thresholds over the observed score range.

    Parameters
    ----------
    genuine_scores, impostor_scores:
        The two score populations.
    n_points:
        If positive, evaluate on an evenly spaced grid of this size;
        otherwise evaluate at every distinct observed score (exact ROC).
    """
    gen = _as_scores(genuine_scores, "genuine")
    imp = _as_scores(impostor_scores, "impostor")
    if n_points > 0:
        lo = min(gen.min(), imp.min())
        hi = max(gen.max(), imp.max())
        thresholds = np.linspace(lo, hi + 1e-9, n_points)
    else:
        thresholds = np.unique(np.concatenate([gen, imp]))
        thresholds = np.append(thresholds, thresholds[-1] + 1e-9)

    gen_sorted = np.sort(gen)
    imp_sorted = np.sort(imp)
    # FNMR(t) = #genuine < t / n ; searchsorted('left') counts strictly less.
    fnmr = np.searchsorted(gen_sorted, thresholds, side="left") / gen.size
    # FMR(t) = #impostor >= t / m.
    fmr = (imp.size - np.searchsorted(imp_sorted, thresholds, side="left")) / imp.size
    return RocCurve(thresholds=thresholds, fmr=fmr, fnmr=fnmr)


def equal_error_rate(
    genuine_scores: Sequence[float], impostor_scores: Sequence[float]
) -> float:
    """Convenience wrapper: exact-sweep EER of two score populations."""
    return roc_curve(genuine_scores, impostor_scores).equal_error_rate()


def det_points(
    genuine_scores: Sequence[float],
    impostor_scores: Sequence[float],
    fmr_targets: Sequence[float],
) -> Tuple[np.ndarray, np.ndarray]:
    """Detection-error-tradeoff samples: FNMR at each requested FMR."""
    targets = np.asarray(fmr_targets, dtype=np.float64)
    fnmrs = np.array(
        [fnmr_at_fmr(genuine_scores, impostor_scores, t) for t in targets]
    )
    return targets, fnmrs


__all__ = [
    "fmr_at_threshold",
    "fnmr_at_threshold",
    "threshold_at_fmr",
    "fnmr_at_fmr",
    "RocCurve",
    "roc_curve",
    "equal_error_rate",
    "det_points",
]
