"""Ridge-image rendering."""

import numpy as np
import pytest

from repro.synthesis.master import synthesize_master_finger
from repro.synthesis.ridges import ascii_preview, render_ridge_image, write_pgm


@pytest.fixture(scope="module")
def finger():
    return synthesize_master_finger(np.random.default_rng(21))


class TestRendering:
    def test_dimensions_match_pad(self, finger):
        image = render_ridge_image(finger, pixels_per_mm=5.0)
        assert image.shape[0] == int(np.ceil(2 * finger.pad_half_height * 5))
        assert image.shape[1] == int(np.ceil(2 * finger.pad_half_width * 5))
        assert image.dtype == np.uint8

    def test_contains_ridge_contrast(self, finger):
        image = render_ridge_image(finger)
        assert image.min() < 60 and image.max() > 200

    def test_background_is_white(self, finger):
        image = render_ridge_image(finger)
        assert image[0, 0] == 255  # corner is outside the pad ellipse

    def test_dryness_adds_speckle(self, finger):
        clean = render_ridge_image(finger)
        dry = render_ridge_image(
            finger, dryness=0.9, rng=np.random.default_rng(0)
        )
        assert dry.mean() > clean.mean()  # broken ridges brighten the image


class TestWriters:
    def test_pgm_roundtrip_header(self, finger, tmp_path):
        image = render_ridge_image(finger, pixels_per_mm=4.0)
        path = tmp_path / "finger.pgm"
        write_pgm(image, path)
        content = path.read_bytes()
        assert content.startswith(b"P5\n")
        h, w = image.shape
        assert f"{w} {h}".encode() in content
        assert len(content) == content.index(b"255\n") + 4 + w * h

    def test_pgm_validates_input(self, tmp_path):
        with pytest.raises(ValueError):
            write_pgm(np.zeros((2, 2), dtype=np.float64), tmp_path / "x.pgm")

    def test_ascii_preview(self, finger):
        image = render_ridge_image(finger, pixels_per_mm=4.0)
        text = ascii_preview(image, max_width=40)
        lines = text.splitlines()
        assert 0 < max(len(line) for line in lines) <= 40

    def test_ascii_rejects_1d(self):
        with pytest.raises(ValueError):
            ascii_preview(np.zeros(5, dtype=np.uint8))
