"""Probabilistic false-non-match prediction.

The paper's §V asks for "statistical and probabilistic modeling ...
being able to answer questions such as 'what is the probability that I
will have a False Non-Match pertaining to a user enrolled using the
Device X and verified using the Device Y?'".

:class:`FnmrPredictor` answers exactly that with a Beta-Binomial model
per (gallery device, probe device) cell:

* each cell's genuine comparisons at the operating threshold are
  Bernoulli trials (non-match / match);
* a Beta(a0, b0) prior — default Jeffreys (0.5, 0.5) — is updated with
  the observed failures, giving a full posterior over the cell's FNMR;
* queries return the posterior mean and an equal-tailed credible
  interval, so rarely-observed cells honestly report wide uncertainty
  instead of a point zero.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..runtime.errors import ConfigurationError
from ..sensors.registry import DEVICE_ORDER
from ..stats.roc import threshold_at_fmr


@dataclass(frozen=True)
class FnmPrediction:
    """Posterior summary for one device pair.

    Attributes
    ----------
    probability:
        Posterior mean FNM probability.
    low, high:
        Equal-tailed credible interval at the requested level.
    failures, trials:
        The observed evidence behind the posterior.
    """

    probability: float
    low: float
    high: float
    failures: int
    trials: int


def _beta_interval(a: float, b: float, level: float) -> Tuple[float, float]:
    """Equal-tailed Beta(a, b) interval via bisection on the CDF.

    Uses the regularized incomplete beta function computed by the
    continued-fraction method (Numerical Recipes) — no scipy required.
    """
    lo_q = (1.0 - level) / 2.0
    hi_q = 1.0 - lo_q
    return _beta_ppf(a, b, lo_q), _beta_ppf(a, b, hi_q)


def _beta_ppf(a: float, b: float, q: float) -> float:
    lo, hi = 0.0, 1.0
    for __ in range(80):
        mid = (lo + hi) / 2.0
        if _beta_cdf(a, b, mid) < q:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def _beta_cdf(a: float, b: float, x: float) -> float:
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_beta = math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b)
    front = math.exp(a * math.log(x) + b * math.log(1.0 - x) - ln_beta)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_cont_frac(a, b, x) / a
    return 1.0 - math.exp(
        b * math.log(1.0 - x) + a * math.log(x) - ln_beta
    ) * _beta_cont_frac(b, a, 1.0 - x) / b


def _beta_cont_frac(a: float, b: float, x: float, max_iter: int = 200) -> float:
    tiny = 1e-30
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, max_iter + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-12:
            break
    return h


class FnmrPredictor:
    """Beta-Binomial FNMR posterior per device pair.

    Parameters
    ----------
    prior_a, prior_b:
        Beta prior pseudo-counts; the default Jeffreys prior (0.5, 0.5)
        is weakly informative and well-calibrated for rare events.
    """

    def __init__(self, prior_a: float = 0.5, prior_b: float = 0.5) -> None:
        if prior_a <= 0 or prior_b <= 0:
            raise ConfigurationError("Beta prior pseudo-counts must be positive")
        self.prior_a = prior_a
        self.prior_b = prior_b
        self._evidence: Dict[Tuple[str, str], Tuple[int, int]] = {}
        self.threshold: Optional[float] = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit_from_study(self, study, target_fmr: float = 1e-3) -> "FnmrPredictor":
        """Observe every cell of a study at a fixed-FMR threshold.

        The threshold is derived per cell from that cell's impostors —
        the same operating-point construction as Table 5.
        """
        for gallery_device in DEVICE_ORDER:
            for probe_device in DEVICE_ORDER:
                genuine = study.genuine_scores(gallery_device, probe_device)
                impostor = study.impostor_scores(gallery_device, probe_device)
                if len(genuine) == 0 or len(impostor) == 0:
                    continue
                threshold = threshold_at_fmr(impostor.scores, target_fmr)
                failures = int(np.count_nonzero(genuine.scores < threshold))
                self.observe(gallery_device, probe_device, failures, len(genuine))
        return self

    def observe(
        self, gallery_device: str, probe_device: str, failures: int, trials: int
    ) -> None:
        """Add evidence for one cell (accumulates across calls)."""
        if failures < 0 or trials < 0 or failures > trials:
            raise ConfigurationError(
                f"invalid evidence: {failures} failures of {trials} trials"
            )
        old_f, old_t = self._evidence.get((gallery_device, probe_device), (0, 0))
        self._evidence[(gallery_device, probe_device)] = (
            old_f + failures,
            old_t + trials,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def predict(
        self, gallery_device: str, probe_device: str, level: float = 0.95
    ) -> FnmPrediction:
        """The paper's question, answered with calibrated uncertainty."""
        if not 0.0 < level < 1.0:
            raise ConfigurationError(f"credible level must be in (0,1), got {level}")
        failures, trials = self._evidence.get((gallery_device, probe_device), (0, 0))
        a = self.prior_a + failures
        b = self.prior_b + (trials - failures)
        mean = a / (a + b)
        low, high = _beta_interval(a, b, level)
        return FnmPrediction(
            probability=mean, low=low, high=high, failures=failures, trials=trials
        )

    def prediction_matrix(self, level: float = 0.95) -> np.ndarray:
        """(5, 5) posterior-mean FNMR matrix in DEVICE_ORDER."""
        n = len(DEVICE_ORDER)
        matrix = np.full((n, n), np.nan)
        for i, gallery_device in enumerate(DEVICE_ORDER):
            for j, probe_device in enumerate(DEVICE_ORDER):
                if (gallery_device, probe_device) in self._evidence:
                    matrix[i, j] = self.predict(
                        gallery_device, probe_device, level
                    ).probability
        return matrix

    def render(self, level: float = 0.95) -> str:
        """Text table of predictions with credible intervals."""
        lines = [
            f"FNM probability posterior (Beta-Binomial, {level:.0%} credible)",
            f"{'gallery':<9}{'probe':<8}{'P(FNM)':>10}{'interval':>24}{'evidence':>16}",
        ]
        for gallery_device in DEVICE_ORDER:
            for probe_device in DEVICE_ORDER:
                if (gallery_device, probe_device) not in self._evidence:
                    continue
                p = self.predict(gallery_device, probe_device, level)
                lines.append(
                    f"{gallery_device:<9}{probe_device:<8}{p.probability:>10.4f}"
                    f"{'[' + format(p.low, '.4f') + ', ' + format(p.high, '.4f') + ']':>24}"
                    f"{str(p.failures) + '/' + str(p.trials):>16}"
                )
        return "\n".join(lines)


__all__ = ["FnmrPredictor", "FnmPrediction"]
