"""Measure DMG scoring throughput and record it in benchmarks/output/.

Usage::

    PYTHONPATH=src python benchmarks/throughput_dmg.py \
        --label "PR-2 batched engine" --out dmg_throughput_pr2_batched.json

Mirrors the PR-1 baseline record
(``benchmarks/output/dmg_throughput_pr1_baseline.json``): same
population (80 subjects, default seed), same scenario (DMG), sequential
execution — so jobs/second across the two files is an apples-to-apples
engine comparison.  The mean score is recorded as the parity check; it
must not move between engines.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from _bench_common import OUTPUT_DIR
from repro.api import BioEngineMatcher, StudyConfig, build_collection
from repro.core.scores import enumerate_dmg_jobs, run_jobs_batched


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--subjects", type=int, default=80)
    parser.add_argument("--label", default="batched run_jobs_batched, sequential")
    parser.add_argument("--out", default="dmg_throughput.json")
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="scoring passes; the best (least-interrupted) one is kept",
    )
    args = parser.parse_args()

    config = StudyConfig(n_subjects=args.subjects)
    start = time.perf_counter()
    collection = build_collection(config)
    collection_seconds = time.perf_counter() - start

    jobs = enumerate_dmg_jobs(args.subjects)
    matcher = BioEngineMatcher()
    best = float("inf")
    mean_score = None
    for _ in range(args.repeats):
        start = time.perf_counter()
        scores = run_jobs_batched(jobs, collection, matcher, "right_index", "DMG")
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        mean_score = float(scores.scores.mean())

    record = {
        "label": args.label,
        "n_subjects": args.subjects,
        "scenario": "DMG",
        "jobs": len(jobs),
        "collection_seconds": round(collection_seconds, 3),
        "score_seconds": round(best, 3),
        "jobs_per_second": round(len(jobs) / best, 1),
        "mean_score": mean_score,
    }
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    out_path = OUTPUT_DIR / args.out
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"written to {out_path}")


if __name__ == "__main__":
    main()
