"""Score normalization."""

import numpy as np
import pytest

from repro.calibration.score_norm import (
    GOOD_QUALITY,
    POOR_QUALITY,
    LLRNormalizer,
    ZNormalizer,
    quality_band,
)
from repro.runtime.errors import CalibrationError


class TestQualityBand:
    def test_good(self):
        assert quality_band(1, 2) == GOOD_QUALITY

    def test_poor_if_either_side_bad(self):
        assert quality_band(1, 4) == POOR_QUALITY
        assert quality_band(5, 1) == POOR_QUALITY


class TestZNorm:
    def test_standardizes_impostors(self):
        rng = np.random.default_rng(0)
        impostors = rng.normal(2.0, 0.8, 2000)
        norm = ZNormalizer()
        norm.fit_cell("D0", "D1", impostors)
        z = norm.normalize_array("D0", "D1", impostors)
        assert z.mean() == pytest.approx(0.0, abs=0.05)
        assert z.std(ddof=1) == pytest.approx(1.0, abs=0.05)

    def test_aligns_cells_with_different_scales(self):
        rng = np.random.default_rng(1)
        norm = ZNormalizer()
        norm.fit_cell("D0", "D0", rng.normal(1.0, 0.5, 500))
        norm.fit_cell("D0", "D4", rng.normal(2.5, 1.0, 500))
        # A score 3 sigma above each cell's impostors maps to ~3 in both.
        assert norm.normalize("D0", "D0", 1.0 + 3 * 0.5) == pytest.approx(3.0, abs=0.4)
        assert norm.normalize("D0", "D4", 2.5 + 3 * 1.0) == pytest.approx(3.0, abs=0.4)

    def test_unfitted_cell_raises(self):
        with pytest.raises(CalibrationError):
            ZNormalizer().normalize("D0", "D1", 5.0)

    def test_too_few_scores(self):
        with pytest.raises(CalibrationError):
            ZNormalizer().fit_cell("D0", "D1", np.array([1.0]))


class TestLLRNorm:
    def test_genuine_scores_map_positive(self):
        rng = np.random.default_rng(2)
        genuine = rng.normal(14, 3, 500)
        impostor = rng.normal(1.5, 1.0, 500)
        norm = LLRNormalizer()
        norm.fit_cell("D0", "D1", genuine, impostor)
        assert norm.normalize("D0", "D1", 14.0) > 0
        assert norm.normalize("D0", "D1", 1.5) < 0

    def test_monotone_between_means(self):
        rng = np.random.default_rng(3)
        norm = LLRNormalizer()
        norm.fit_cell(
            "D0", "D1", rng.normal(14, 3, 500), rng.normal(1.5, 1.0, 500)
        )
        values = [norm.normalize("D0", "D1", s) for s in (2.0, 6.0, 10.0, 14.0)]
        assert values == sorted(values)

    def test_quality_dependent_requires_nfiq(self):
        rng = np.random.default_rng(4)
        norm = LLRNormalizer(quality_dependent=True)
        genuine = rng.normal(14, 3, 200)
        impostor = rng.normal(1.5, 1.0, 200)
        nfiq_gen = (rng.integers(1, 6, 200), rng.integers(1, 6, 200))
        nfiq_imp = (rng.integers(1, 6, 200), rng.integers(1, 6, 200))
        norm.fit_cell("D0", "D1", genuine, impostor, nfiq_gen, nfiq_imp)
        good = norm.normalize("D0", "D1", 10.0, nfiq_gallery=1, nfiq_probe=1)
        poor = norm.normalize("D0", "D1", 10.0, nfiq_gallery=5, nfiq_probe=5)
        assert np.isfinite(good) and np.isfinite(poor)
        with pytest.raises(CalibrationError):
            norm.normalize("D0", "D1", 10.0)  # missing NFIQ

    def test_quality_dependent_fit_requires_nfiq(self):
        norm = LLRNormalizer(quality_dependent=True)
        with pytest.raises(CalibrationError):
            norm.fit_cell("D0", "D1", np.zeros(10), np.zeros(10))

    def test_missing_cell(self):
        with pytest.raises(CalibrationError):
            LLRNormalizer().normalize("D9", "D9", 1.0)
