"""Persistent, device-aware gallery of enrolled templates.

The online counterpart of the batch study's
:class:`~repro.pipeline.database.FingerprintCollection`: instead of a
synthesized population fixed at construction, :class:`GalleryIndex`
accepts enrollments one at a time, gates them on template-evidence NFIQ
quality, and persists every accepted record so the gallery survives a
server restart.

Storage rides :class:`~repro.runtime.cache.NpzDirectory` — one shard
directory per capture device, one ``.npz`` bundle per identity — so the
gallery inherits the cache layer's atomic writes and
corruption-as-miss semantics: a record torn by a crash mid-write is
dropped (and logged) at reload rather than poisoning the index.  The
per-device sharding mirrors the paper's central finding: which device
enrolled a finger is *the* covariate interoperability cares about, so
the serving layer keeps it a first-class axis (verify and identify
requests address a device shard, and cross-device searches are an
explicit choice).

Each record also carries its fixed-length **prefilter descriptor**
(:func:`repro.core.prefilter.descriptor_vector`), and every device
shard maintains a contiguous descriptor matrix — a
:class:`~repro.core.prefilter.PrefilterIndex` updated incrementally on
enroll/delete and persisted under ``root/__index__/<device>.npz`` as
one more corruption-as-miss tier: a torn or stale matrix is rebuilt
from the records (never trusted), so the index can accelerate
``/identify`` without ever being able to corrupt it.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.prefilter import (
    DESCRIPTOR_DIM,
    DESCRIPTOR_VERSION,
    PrefilterCandidate,
    PrefilterIndex,
    descriptor_vector,
    merge_shard_candidates,
)
from ..matcher.types import Template, template_from_arrays
from ..quality.nfiq import assess_template
from ..runtime.cache import NpzDirectory
from ..runtime.errors import ConfigurationError, PermanentError, ReproError
from ..runtime.telemetry import get_logger, get_recorder

_NAME_RE = re.compile(r"^[A-Za-z0-9._-]+$")

#: Shard directory holding the persisted per-device descriptor
#: matrices; reserved — no device or identity may use the name.
_INDEX_DIRNAME = "__index__"

#: Default NFIQ acceptance ceiling: levels 1–4 enroll, level 5 (the
#: "hopeless sample" bucket) is rejected.  NIST SP 800-76 gates at
#: NFIQ > 3; pass ``max_nfiq_level=3`` for that stricter policy.
DEFAULT_MAX_NFIQ_LEVEL = 4

_log = get_logger("service.gallery")


class GalleryError(ReproError):
    """The gallery index could not complete an operation."""


class EnrollmentRejected(PermanentError):
    """An enrollment failed the NFIQ quality gate.

    Permanent by design: re-submitting the same template will produce
    the same level, so the caller must re-capture, not retry.
    """

    def __init__(self, identity: str, level: int, max_level: int) -> None:
        super().__init__(
            f"enrollment of {identity!r} rejected: NFIQ level {level} "
            f"exceeds the acceptance ceiling {max_level}"
        )
        self.identity = identity
        self.level = level
        self.max_level = max_level


class UnknownIdentityError(PermanentError):
    """A lookup referenced an identity/device pair that is not enrolled."""

    def __init__(self, identity: str, device: str) -> None:
        super().__init__(f"identity {identity!r} is not enrolled on device {device!r}")
        self.identity = identity
        self.device = device


@dataclass(frozen=True)
class GalleryRecord:
    """One enrolled template plus its enrollment-time metadata.

    ``descriptor`` is the record's prefilter vector — persisted with the
    template so reloads never pay the descriptor build, excluded from
    equality because numpy arrays don't compare to a bool.
    """

    identity: str
    device: str
    template: Template
    nfiq_level: int
    nfiq_utility: float
    enrolled_at: float
    descriptor: np.ndarray = field(compare=False, repr=False, default=None)


def _check_name(value: str, what: str) -> str:
    if not isinstance(value, str) or not _NAME_RE.match(value):
        raise ConfigurationError(
            f"{what} must match [A-Za-z0-9._-]+, got {value!r}"
        )
    if value == _INDEX_DIRNAME:
        raise ConfigurationError(
            f"{what} {value!r} is reserved for the descriptor index"
        )
    return value


class GalleryIndex:
    """Enrollment database: per-device shards of quality-gated templates.

    Parameters
    ----------
    root:
        Directory holding the per-device shards
        (``root/<device>/<identity>.npz``).  Created on first enrollment;
        existing records are loaded eagerly at construction, which is how
        a restarted server recovers its gallery.
    max_nfiq_level:
        Acceptance ceiling for the template-evidence NFIQ gate; a
        template assessed *worse* (numerically greater) is rejected with
        :class:`EnrollmentRejected`.
    """

    def __init__(
        self,
        root: Path,
        max_nfiq_level: int = DEFAULT_MAX_NFIQ_LEVEL,
    ) -> None:
        if not 1 <= max_nfiq_level <= 5:
            raise ConfigurationError(
                f"max_nfiq_level must be 1..5, got {max_nfiq_level}"
            )
        self._root = Path(root)
        self._max_nfiq_level = max_nfiq_level
        self._shards: Dict[str, NpzDirectory] = {}
        self._records: Dict[Tuple[str, str], GalleryRecord] = {}
        self._indexes: Dict[str, PrefilterIndex] = {}
        self._index_store = NpzDirectory(
            self._root / _INDEX_DIRNAME, metric_prefix="gallery.index"
        )
        self._reload()

    # ------------------------------------------------------------------
    # Persistence plumbing
    # ------------------------------------------------------------------
    def _shard(self, device: str) -> NpzDirectory:
        shard = self._shards.get(device)
        if shard is None:
            shard = NpzDirectory(self._root / device, metric_prefix="gallery")
            self._shards[device] = shard
        return shard

    def _reload(self) -> None:
        """Rebuild the in-memory index from whatever survives on disk."""
        if not self._root.exists():
            return
        loaded = 0
        dropped = 0
        for device_dir in sorted(p for p in self._root.iterdir() if p.is_dir()):
            device = device_dir.name
            if device == _INDEX_DIRNAME or not _NAME_RE.match(device):
                continue
            shard = self._shard(device)
            for entry in sorted(device_dir.glob("*.npz")):
                identity = entry.stem
                if not _NAME_RE.match(identity):
                    continue
                record = self._load_record(shard, device, identity)
                if record is None:
                    dropped += 1
                    continue
                self._records[(device, identity)] = record
                loaded += 1
        for device in self.devices():
            self._restore_index(device)
        if loaded or dropped:
            _log.info(
                "gallery reloaded",
                extra={"data": {"records": loaded, "dropped": dropped}},
            )

    def _load_record(
        self, shard: NpzDirectory, device: str, identity: str
    ) -> Optional[GalleryRecord]:
        arrays = shard.load(identity)
        meta = shard.load_meta(identity)
        if arrays is None or meta is None:
            return None
        try:
            template = template_from_arrays(
                positions_px=arrays["positions"],
                angles=arrays["angles"],
                kinds=arrays["kinds"],
                qualities=arrays["qualities"],
                width_px=int(meta["width_px"]),
                height_px=int(meta["height_px"]),
                resolution_dpi=int(meta.get("resolution_dpi", 500)),
            )
        except (KeyError, ReproError):
            _log.warning(
                "unreadable gallery record dropped",
                extra={"data": {"device": device, "identity": identity}},
            )
            return None
        descriptor = arrays.get("descriptor")
        if (
            descriptor is None
            or descriptor.shape != (DESCRIPTOR_DIM,)
            or int(meta.get("descriptor_version", 0)) != DESCRIPTOR_VERSION
        ):
            # Records written before the prefilter (or under another
            # descriptor layout) are upgraded in memory; the next store
            # of that identity persists the fresh vector.
            descriptor = descriptor_vector(template)
            get_recorder().count("gallery.descriptor_recomputed")
        return GalleryRecord(
            identity=identity,
            device=device,
            template=template,
            nfiq_level=int(meta.get("nfiq_level", 0)) or assess_template(template).level,
            nfiq_utility=float(meta.get("nfiq_utility", 0.0)),
            enrolled_at=float(meta.get("enrolled_at", 0.0)),
            descriptor=np.asarray(descriptor, dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # Descriptor index maintenance
    # ------------------------------------------------------------------
    def _index(self, device: str) -> PrefilterIndex:
        index = self._indexes.get(device)
        if index is None:
            index = PrefilterIndex()
            self._indexes[device] = index
        return index

    def _persist_index(self, device: str) -> None:
        """Write one shard's contiguous descriptor matrix atomically."""
        index = self._index(device)
        if len(index) == 0:
            self._index_store.invalidate(device)
            return
        self._index_store.store(
            device,
            arrays={"matrix": index.matrix()},
            meta={
                "device": device,
                "identities": list(index.keys()),
                "descriptor_version": DESCRIPTOR_VERSION,
                "dim": index.dim,
            },
        )

    def _rebuild_index(self, device: str) -> None:
        """Derive one shard's index from its records and re-persist it."""
        self._indexes[device] = PrefilterIndex.from_items({
            identity: record.descriptor
            for (dev, identity), record in sorted(self._records.items())
            if dev == device
        })
        self._persist_index(device)
        get_recorder().count("gallery.index.rebuilt")

    def _restore_index(self, device: str) -> None:
        """Adopt the persisted matrix when it matches the records.

        The matrix is a derived artifact: corruption, a descriptor
        version bump, or any disagreement with the records (identity
        set, dimension, non-finite rows) means it is discarded and
        rebuilt — corruption-as-miss, never corruption-as-truth.
        """
        arrays = self._index_store.load(device)
        meta = self._index_store.load_meta(device)
        expected = sorted(
            identity for (dev, identity) in self._records if dev == device
        )
        if arrays is not None and meta is not None:
            matrix = arrays.get("matrix")
            identities = list(meta.get("identities", []))
            if (
                int(meta.get("descriptor_version", 0)) == DESCRIPTOR_VERSION
                and matrix is not None
                and matrix.ndim == 2
                and matrix.shape == (len(identities), DESCRIPTOR_DIM)
                and sorted(identities) == expected
                and bool(np.all(np.isfinite(matrix)))
            ):
                self._indexes[device] = PrefilterIndex.from_items({
                    identity: matrix[i] for i, identity in enumerate(identities)
                })
                return
            _log.warning(
                "stale descriptor matrix rebuilt",
                extra={"data": {"device": device}},
            )
        self._rebuild_index(device)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def enroll(
        self, identity: str, template: Template, device: str = "default"
    ) -> GalleryRecord:
        """Quality-gate, persist, and index one template.

        Re-enrolling an existing (identity, device) pair replaces the
        stored template — the online analogue of a re-capture.  Raises
        :class:`EnrollmentRejected` when the template's NFIQ level is
        worse than the index's acceptance ceiling.
        """
        _check_name(identity, "identity")
        _check_name(device, "device")
        assessment = assess_template(template)
        if assessment.level > self._max_nfiq_level:
            get_recorder().count("gallery.rejected")
            raise EnrollmentRejected(identity, assessment.level, self._max_nfiq_level)
        descriptor = descriptor_vector(template)
        record = GalleryRecord(
            identity=identity,
            device=device,
            template=template,
            nfiq_level=assessment.level,
            nfiq_utility=assessment.utility,
            enrolled_at=time.time(),
            descriptor=descriptor,
        )
        self._shard(device).store(
            identity,
            arrays={
                "positions": template.positions_px(),
                "angles": template.angles(),
                "kinds": template.kinds(),
                "qualities": template.qualities(),
                "descriptor": descriptor,
            },
            meta={
                "identity": identity,
                "device": device,
                "nfiq_level": record.nfiq_level,
                "nfiq_utility": record.nfiq_utility,
                "width_px": template.width_px,
                "height_px": template.height_px,
                "resolution_dpi": template.resolution_dpi,
                "enrolled_at": record.enrolled_at,
                "descriptor_version": DESCRIPTOR_VERSION,
            },
        )
        self._records[(device, identity)] = record
        self._index(device).add(identity, descriptor)
        self._persist_index(device)
        get_recorder().count("gallery.enrolled")
        return record

    def delete(self, identity: str, device: str = "default") -> None:
        """Remove one enrollment; unknown pairs raise."""
        _check_name(identity, "identity")
        _check_name(device, "device")
        if (device, identity) not in self._records:
            raise UnknownIdentityError(identity, device)
        del self._records[(device, identity)]
        self._shard(device).invalidate(identity)
        index = self._index(device)
        if identity in index:
            index.remove(identity)
        self._persist_index(device)
        get_recorder().count("gallery.deleted")

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def get(self, identity: str, device: str = "default") -> GalleryRecord:
        """The enrolled record, or :class:`UnknownIdentityError`."""
        record = self._records.get((device, identity))
        if record is None:
            raise UnknownIdentityError(identity, device)
        return record

    def __contains__(self, key: Tuple[str, str]) -> bool:
        device, identity = key
        return (device, identity) in self._records

    def __len__(self) -> int:
        return len(self._records)

    def devices(self) -> List[str]:
        """Devices with at least one enrollment, sorted."""
        return sorted({device for device, _ in self._records})

    def identities(self, device: Optional[str] = None) -> List[str]:
        """Enrolled identities (on one device, or anywhere), sorted."""
        if device is None:
            return sorted({identity for _, identity in self._records})
        return sorted(
            identity for dev, identity in self._records if dev == device
        )

    def candidates(self, device: Optional[str] = None) -> Dict[str, Template]:
        """The 1:N search space as ``{identity: template}``.

        With a device, keys are bare identities within that shard; across
        all devices the same identity may be enrolled several times, so
        keys become ``device/identity`` to keep candidates distinct.
        """
        if device is not None:
            return {
                identity: record.template
                for (dev, identity), record in sorted(self._records.items())
                if dev == device
            }
        return {
            f"{dev}/{identity}": record.template
            for (dev, identity), record in sorted(self._records.items())
        }

    def prefilter(
        self,
        probe: Template,
        device: Optional[str] = None,
        k: int = 32,
    ) -> List[PrefilterCandidate]:
        """Coarse-stage top-K: the descriptor-nearest enrolled candidates.

        Keys match :meth:`candidates` — bare identities within one
        device shard, ``device/identity`` across shards (each shard's
        local top-K is merged into an exact global top-K, so sharding
        never changes the answer).  Returns at most ``k`` candidates,
        nearest first; an empty gallery returns an empty list.
        """
        if k < 1:
            raise ConfigurationError(f"prefilter needs k >= 1, got {k}")
        vector = descriptor_vector(probe)
        if device is not None:
            _check_name(device, "device")
            if device not in self._indexes:
                return []
            return self._indexes[device].top_k(vector, k)
        shards = []
        for dev in self.devices():
            local = self._indexes[dev].top_k(vector, k)
            shards.append([
                PrefilterCandidate(
                    key=f"{dev}/{c.key}", distance=c.distance, rank=c.rank
                )
                for c in local
            ])
        return merge_shard_candidates(shards, k)

    def records(self) -> Dict[Tuple[str, str], GalleryRecord]:
        """A shallow copy of every record, keyed ``(device, identity)``.

        The worker pool packs this into a
        :class:`~repro.runtime.shm.SharedGalleryStore` snapshot at
        startup; the copy keeps later enrollments from mutating the dict
        mid-pack.
        """
        return dict(self._records)

    def descriptor_matrix(self, device: str) -> np.ndarray:
        """One shard's contiguous (n, dim) descriptor matrix (a copy)."""
        _check_name(device, "device")
        if device not in self._indexes:
            return np.empty((0, DESCRIPTOR_DIM), dtype=np.float64)
        return self._indexes[device].matrix()

    def stats(self) -> dict:
        """JSON-able footprint summary for ``/stats`` and the CLI."""
        per_device: Dict[str, int] = {}
        for device, _ in self._records:
            per_device[device] = per_device.get(device, 0) + 1
        disk = {"entries": 0, "bytes": 0}
        for device in self.devices():
            shard_stats = self._shard(device).stats()
            disk["entries"] += shard_stats["entries"]
            disk["bytes"] += shard_stats["bytes"]
        return {
            "root": str(self._root),
            "enrolled": len(self._records),
            "devices": per_device,
            "max_nfiq_level": self._max_nfiq_level,
            "disk": disk,
            "index": {
                "descriptor_version": DESCRIPTOR_VERSION,
                "descriptor_dim": DESCRIPTOR_DIM,
                "indexed": {
                    device: len(index)
                    for device, index in sorted(self._indexes.items())
                },
            },
        }


__all__ = [
    "GalleryIndex",
    "GalleryRecord",
    "GalleryError",
    "EnrollmentRejected",
    "UnknownIdentityError",
    "DEFAULT_MAX_NFIQ_LEVEL",
]
