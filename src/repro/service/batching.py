"""Admission queue and micro-batching for the online matcher.

The batch study showed the matcher's batched entry points amortize
per-call overhead across many comparisons; an online server naturally
receives comparisons one at a time.  :class:`MicroBatcher` closes that
gap: concurrent in-flight requests enqueue *pair jobs* (one per
probe/gallery comparison — a verify is one job, a 1:N identify fans out
into one job per candidate), and a collector coalesces up to
``max_batch`` jobs — waiting at most ``max_wait_ms`` for stragglers —
into a single :meth:`~repro.matcher.engine.BioEngineMatcher.score_pairs`
dispatch on the worker executor.  One executor round-trip then serves a
whole batch of comparisons, instead of one event-loop/worker handoff
per comparison.

Overload and deadlines reuse the study's error taxonomy
(:mod:`repro.runtime.errors`): a full admission queue raises
:class:`ServiceOverloadError` (transient — back off and retry, HTTP
503) instead of letting latency grow without bound, and a job that
outlives its request deadline raises :class:`DeadlineExceededError`
(transient, HTTP 504) without wasting matcher time on an answer nobody
is waiting for.

Knobs come from ``REPRO_SERVE_*`` environment variables via
:meth:`BatchingConfig.from_environment`; setting
``REPRO_SERVE_BATCHING=0`` switches to fully unbatched serving — one
scalar matcher call and one worker round trip per comparison, nothing
shared or collapsed — the control arm of the load benchmark.
"""

from __future__ import annotations

import asyncio
import logging
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Sequence, Tuple

import numpy as np

from collections import deque

from ..matcher.types import Template
from ..runtime.config import env_float, env_int
from ..runtime.errors import ConfigurationError, TransientError
from ..runtime.telemetry import (
    TraceContext,
    current_trace,
    get_logger,
    get_recorder,
)
from .stats import ServiceStats

_log = get_logger("service.batching")


class ServiceOverloadError(TransientError):
    """The admission queue is full; the client should back off and retry."""


class DeadlineExceededError(TransientError):
    """A request outlived its deadline before the matcher answered."""


@dataclass(frozen=True)
class BatchingConfig:
    """Micro-batching knobs (all overridable via ``REPRO_SERVE_*``).

    Attributes
    ----------
    max_batch:
        Largest number of pair jobs dispatched in one matcher call
        (``REPRO_SERVE_MAX_BATCH``).
    max_wait_ms:
        How long the collector holds a non-full batch open for
        stragglers (``REPRO_SERVE_MAX_WAIT_MS``).  The classic
        micro-batching trade: higher values grow batches (throughput),
        lower values shrink queueing delay (latency).
    queue_depth:
        Admission bound on queued pair jobs (``REPRO_SERVE_QUEUE_DEPTH``);
        arrivals beyond it are refused with
        :class:`ServiceOverloadError`.
    timeout_s:
        Default per-request deadline (``REPRO_SERVE_TIMEOUT_S``).
    enabled:
        Whether cross-request coalescing runs at all
        (``REPRO_SERVE_BATCHING``, 0 disables).
    """

    max_batch: int = 32
    max_wait_ms: float = 2.0
    queue_depth: int = 256
    timeout_s: float = 30.0
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ConfigurationError(
                f"max_wait_ms cannot be negative, got {self.max_wait_ms}"
            )
        if self.queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.timeout_s <= 0:
            raise ConfigurationError(f"timeout_s must be > 0, got {self.timeout_s}")

    @classmethod
    def from_environment(cls, **defaults: object) -> "BatchingConfig":
        """Build a config; ``REPRO_SERVE_*`` variables win over defaults."""
        params: dict = dict(defaults)
        max_batch = env_int("REPRO_SERVE_MAX_BATCH")
        if max_batch is not None:
            params["max_batch"] = max_batch
        max_wait_ms = env_float("REPRO_SERVE_MAX_WAIT_MS")
        if max_wait_ms is not None:
            params["max_wait_ms"] = max_wait_ms
        queue_depth = env_int("REPRO_SERVE_QUEUE_DEPTH")
        if queue_depth is not None:
            params["queue_depth"] = queue_depth
        timeout_s = env_float("REPRO_SERVE_TIMEOUT_S")
        if timeout_s is not None:
            params["timeout_s"] = timeout_s
        batching = env_int("REPRO_SERVE_BATCHING")
        if batching is not None:
            params["enabled"] = bool(batching)
        return cls(**params)  # type: ignore[arg-type]


@dataclass
class _Job:
    """One queued probe/gallery comparison awaiting a batch slot."""

    probe: Template
    gallery: Template
    future: "asyncio.Future[float]"
    deadline: float
    #: Trace of the request that enqueued this comparison (``None``
    #: when tracing is off or the caller is not a traced request).
    trace: Optional[TraceContext] = None
    #: ``time.perf_counter()`` at enqueue — queue age is measured from
    #: here when the collector claims the job into a batch.
    enqueued: float = field(default_factory=time.perf_counter)


class MicroBatcher:
    """Coalesces concurrent comparisons into batched matcher dispatches.

    Single-event-loop component: :meth:`score` must be awaited from the
    loop that called :meth:`start`.  The matcher itself runs on a
    one-thread executor, which both keeps the event loop responsive
    during a match and serializes access to the engine's (thread-naive)
    frame cache.
    """

    def __init__(
        self,
        matcher,
        stats: Optional[ServiceStats] = None,
        config: Optional[BatchingConfig] = None,
        *,
        name: str = "",
        sequence: Optional[Callable[[], int]] = None,
    ) -> None:
        self._matcher = matcher
        self._stats = stats if stats is not None else ServiceStats()
        self._config = config if config is not None else BatchingConfig()
        self._queue: Deque[_Job] = deque()
        self._wake = asyncio.Event()
        prefix = f"repro-match-{name}" if name else "repro-match"
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=prefix
        )
        self._collector: Optional[asyncio.Task] = None
        self._closed = False
        self._batch_seq = 0
        # Sharded serving runs one batcher per worker; a shared sequence
        # keeps batch ids unique across the pool so traces and stats
        # never show two concurrent batches under one id.
        self._next_batch_id = sequence if sequence is not None else self._bump

    def _bump(self) -> int:
        return self._batch_seq + 1

    @property
    def config(self) -> BatchingConfig:
        return self._config

    @property
    def last_batch_id(self) -> int:
        """Id of the most recently dispatched batch (0 before any)."""
        return self._batch_seq

    @property
    def queue_depth(self) -> int:
        """Pair jobs currently waiting for a batch slot."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the collector task (no-op when batching is disabled)."""
        if self._config.enabled and self._collector is None:
            self._closed = False
            self._collector = asyncio.get_running_loop().create_task(
                self._collect(), name="repro-batch-collector"
            )

    async def stop(self) -> None:
        """Drain the queue, stop the collector, shut the executor down."""
        self._closed = True
        self._wake.set()
        if self._collector is not None:
            await self._collector
            self._collector = None
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Request side
    # ------------------------------------------------------------------
    async def score(
        self,
        pairs: Sequence[Tuple[Template, Template]],
        timeout_s: Optional[float] = None,
    ) -> np.ndarray:
        """Scores of this request's comparisons, in input order.

        With batching enabled, the pairs join the shared admission queue
        and ride whichever micro-batches the collector forms; otherwise
        they are scored immediately in one private dispatch.  Raises
        :class:`ServiceOverloadError` when the queue cannot admit the
        request and :class:`DeadlineExceededError` when the deadline
        expires before the matcher answers.
        """
        loop = asyncio.get_running_loop()
        budget = timeout_s if timeout_s is not None else self._config.timeout_s
        pair_list = list(pairs)
        if not pair_list:
            return np.empty(0, dtype=np.float64)
        if not self._config.enabled or self._collector is None:
            return await self._score_direct(loop, pair_list, budget)
        if len(self._queue) + len(pair_list) > self._config.queue_depth:
            self._stats.record_overload()
            raise ServiceOverloadError(
                f"admission queue full ({len(self._queue)} jobs queued, "
                f"depth {self._config.queue_depth}); retry later"
            )
        deadline = loop.time() + budget
        trace = current_trace()
        enqueued = time.perf_counter()
        futures: List["asyncio.Future[float]"] = []
        for probe, gallery in pair_list:
            future: "asyncio.Future[float]" = loop.create_future()
            self._queue.append(
                _Job(probe, gallery, future, deadline, trace, enqueued)
            )
            futures.append(future)
        recorder = get_recorder()
        if recorder.active:
            recorder.gauge("service.queue_depth", float(len(self._queue)))
        self._wake.set()
        results = await asyncio.gather(*futures, return_exceptions=True)
        scores = np.empty(len(results), dtype=np.float64)
        for index, result in enumerate(results):
            if isinstance(result, BaseException):
                raise result
            scores[index] = result
        return scores

    async def _score_direct(
        self, loop: asyncio.AbstractEventLoop, pair_list: list, budget: float
    ) -> np.ndarray:
        """The unbatched control path: one scalar dispatch per comparison.

        This is what a naive server does — every comparison is its own
        ``match`` call and its own event-loop/worker round trip, with no
        coalescing, no batch grouping, and no duplicate collapsing.  The
        load benchmark measures micro-batching against exactly this arm.
        """
        deadline = loop.time() + budget
        trace = current_trace()
        scores = np.empty(len(pair_list), dtype=np.float64)
        for index, (probe, gallery) in enumerate(pair_list):
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise DeadlineExceededError(
                    f"request exceeded its {budget:.3f}s deadline"
                )
            started = time.perf_counter()
            call = loop.run_in_executor(
                self._executor, self._matcher.match, probe, gallery
            )
            try:
                scores[index] = await asyncio.wait_for(call, timeout=remaining)
            except asyncio.TimeoutError:
                raise DeadlineExceededError(
                    f"request exceeded its {budget:.3f}s deadline"
                ) from None
            self._batch_seq = self._next_batch_id()
            if trace is not None:
                # The unbatched arm still yields an attributable
                # timeline: zero queue/handoff wait, per-call batch id.
                trace.note_batch(
                    self._batch_seq, 0.0, 0.0, time.perf_counter() - started
                )
            self._stats.record_batch(
                1, requests=1, batch_id=self._batch_seq
            )
        return scores

    # ------------------------------------------------------------------
    # Collector side
    # ------------------------------------------------------------------
    async def _collect(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            while not self._queue and not self._closed:
                self._wake.clear()
                await self._wake.wait()
            if not self._queue and self._closed:
                return
            await self._wait_for_stragglers(loop)
            batch = [
                self._queue.popleft()
                for _ in range(min(len(self._queue), self._config.max_batch))
            ]
            await self._dispatch(loop, batch)

    async def _wait_for_stragglers(self, loop: asyncio.AbstractEventLoop) -> None:
        """Hold the batch open briefly so concurrent arrivals can join."""
        if self._config.max_wait_ms <= 0:
            return
        window_end = loop.time() + self._config.max_wait_ms / 1000.0
        while len(self._queue) < self._config.max_batch and not self._closed:
            remaining = window_end - loop.time()
            if remaining <= 0:
                return
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=remaining)
            except asyncio.TimeoutError:
                return

    async def _dispatch(
        self, loop: asyncio.AbstractEventLoop, batch: List[_Job]
    ) -> None:
        now = loop.time()
        live: List[_Job] = []
        expired = 0
        for job in batch:
            if job.future.cancelled():
                continue
            if job.deadline <= now:
                expired += 1
                job.future.set_exception(
                    DeadlineExceededError(
                        "comparison expired in the admission queue"
                    )
                )
                continue
            live.append(job)
        batch_id = 0
        if live:
            self._batch_seq = self._next_batch_id()
            batch_id = self._batch_seq
            claimed = time.perf_counter()
            recorder = get_recorder()
            for job in live:
                queue_wait = max(0.0, claimed - job.enqueued)
                self._stats.record_queue_wait(queue_wait)
                if recorder.active:
                    recorder.observe(
                        "service.phase.queue_wait_seconds", queue_wait
                    )
            pairs = [(job.probe, job.gallery) for job in live]

            def _timed_score_pairs():
                # Runs on the one-thread executor: `started` lags
                # `claimed` by the executor handoff plus any batch still
                # occupying the matcher thread — the batch_wait phase.
                started = time.perf_counter()
                result = self._matcher.score_pairs(pairs)
                return result, started, time.perf_counter()

            try:
                scores, started, finished = await loop.run_in_executor(
                    self._executor, _timed_score_pairs
                )
            except Exception as exc:  # noqa: BLE001 - fan the failure out
                for job in live:
                    if not job.future.cancelled():
                        job.future.set_exception(exc)
            else:
                batch_wait = max(0.0, started - claimed)
                match_seconds = max(0.0, finished - started)
                if recorder.active:
                    recorder.observe(
                        "service.phase.batch_wait_seconds", batch_wait
                    )
                    recorder.observe(
                        "service.phase.match_seconds", match_seconds
                    )
                for job, score in zip(live, scores):
                    if job.trace is not None:
                        job.trace.note_batch(
                            batch_id,
                            max(0.0, claimed - job.enqueued),
                            batch_wait,
                            match_seconds,
                        )
                    if not job.future.cancelled():
                        job.future.set_result(float(score))
        request_ids = sorted(
            {job.trace.request_id for job in live if job.trace is not None}
        )
        self._stats.record_batch(
            len(live),
            expired=expired,
            requests=len(request_ids),
            batch_id=batch_id or None,
        )
        if live and _log.isEnabledFor(logging.DEBUG):
            _log.debug(
                "micro-batch dispatched",
                extra={"data": {
                    "batch_id": batch_id,
                    "jobs": len(live),
                    "expired": expired,
                    "requests": request_ids,
                }},
            )


__all__ = [
    "BatchingConfig",
    "MicroBatcher",
    "ServiceOverloadError",
    "DeadlineExceededError",
]
