"""ANSI/INCITS 378-2004 finger minutiae record codec.

The study's context is exactly this format: the paper cites MINEX
(NISTIR 7296), the evaluation of "performance and interoperability of
the INCITS 378 fingerprint template".  Implementing the binary record
keeps this reproduction's templates exchangeable in the same sense.

Implemented subset (single finger view, no extended data):

========================  ========  =====================================
field                     bytes     value
========================  ========  =====================================
format identifier         4         ``"FMR\\0"``
version                   4         ``" 20\\0"``
record length             4         big-endian u32
CBEFF product id          4         owner/type (we use 0x0000)
capture equipment         2         compliance(4 bits) + device id
image size x, y           2 + 2     pixels
resolution x, y           2 + 2     pixels per cm
finger view count         1         always 1 here
reserved                  1         0
-- per view -------------------------------------------------------------
finger position           1         ISO finger code
view number / impression  1         packed 4+4 bits
finger quality            1         0-100
minutia count             1
-- per minutia ----------------------------------------------------------
type + x                  2         2-bit type, 14-bit x
reserved + y              2         2-bit reserved, 14-bit y
angle                     1         units of 1.40625 degrees (360/256)
quality                   1         0-100
-- footer ---------------------------------------------------------------
extended data length      2         0
========================  ========  =====================================

The codec is strict on decode: truncated or inconsistent buffers raise
:class:`~repro.runtime.errors.TemplateFormatError` with a description of
what went wrong, never a silent partial template.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..matcher.types import KIND_BIFURCATION, KIND_ENDING, Minutia, Template
from ..runtime.errors import TemplateFormatError

_MAGIC = b"FMR\x00"
_VERSION = b" 20\x00"
_HEADER_FMT = ">4s4sIIHHHHHBB"
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)
_VIEW_HEADER_FMT = ">BBBB"
_VIEW_HEADER_SIZE = struct.calcsize(_VIEW_HEADER_FMT)
_MINUTIA_SIZE = 6
_FOOTER_SIZE = 2

#: INCITS 378 minutia type codes.
_TYPE_TO_CODE = {KIND_ENDING: 0b01, KIND_BIFURCATION: 0b10}
_CODE_TO_TYPE = {0b01: KIND_ENDING, 0b10: KIND_BIFURCATION, 0b00: KIND_ENDING}

#: Angle quantum: 360 degrees / 256.
_ANGLE_UNIT_RAD = 2.0 * np.pi / 256.0


@dataclass(frozen=True)
class RecordMetadata:
    """Non-template metadata carried in an INCITS 378 record."""

    capture_device_id: int = 0
    finger_position: int = 2  # right index
    finger_quality: int = 60
    impression_type: int = 0  # live-scan plain


def _dpi_to_ppcm(dpi: int) -> int:
    return int(round(dpi / 2.54))


def _ppcm_to_dpi(ppcm: int) -> int:
    return int(round(ppcm * 2.54))


def encode(template: Template, metadata: RecordMetadata = RecordMetadata()) -> bytes:
    """Serialize ``template`` into an INCITS 378 binary record."""
    n = len(template)
    if n > 255:
        raise TemplateFormatError(f"INCITS 378 allows at most 255 minutiae, got {n}")
    record_length = _HEADER_SIZE + _VIEW_HEADER_SIZE + n * _MINUTIA_SIZE + _FOOTER_SIZE

    header = struct.pack(
        _HEADER_FMT,
        _MAGIC,
        _VERSION,
        record_length,
        0,  # CBEFF product id
        metadata.capture_device_id & 0x0FFF,
        template.width_px,
        template.height_px,
        _dpi_to_ppcm(template.resolution_dpi),
        _dpi_to_ppcm(template.resolution_dpi),
        1,  # one finger view
        0,  # reserved
    )
    view = struct.pack(
        _VIEW_HEADER_FMT,
        metadata.finger_position & 0xFF,
        ((0 & 0x0F) << 4) | (metadata.impression_type & 0x0F),
        max(0, min(100, metadata.finger_quality)),
        n,
    )

    body = bytearray()
    for m in template.minutiae:
        x = int(round(m.x))
        y = int(round(m.y))
        if not 0 <= x < 2**14 or not 0 <= y < 2**14:
            raise TemplateFormatError(
                f"minutia position ({x}, {y}) outside the 14-bit INCITS range"
            )
        type_code = _TYPE_TO_CODE[m.kind]
        angle_units = int(round(np.mod(m.angle, 2 * np.pi) / _ANGLE_UNIT_RAD)) % 256
        body += struct.pack(
            ">HHBB",
            (type_code << 14) | x,
            y & 0x3FFF,
            angle_units,
            max(0, min(100, m.quality)),
        )
    footer = struct.pack(">H", 0)
    return header + view + bytes(body) + footer


def decode(buffer: bytes) -> Tuple[Template, RecordMetadata]:
    """Parse an INCITS 378 record back into a template plus metadata.

    Raises
    ------
    TemplateFormatError
        On any structural inconsistency (bad magic, truncated body,
        wrong declared length).
    """
    if len(buffer) < _HEADER_SIZE + _VIEW_HEADER_SIZE + _FOOTER_SIZE:
        raise TemplateFormatError(
            f"buffer of {len(buffer)} bytes is shorter than a minimal record"
        )
    (
        magic,
        version,
        record_length,
        __cbeff,
        device_field,
        width_px,
        height_px,
        res_x_ppcm,
        res_y_ppcm,
        view_count,
        __reserved,
    ) = struct.unpack_from(_HEADER_FMT, buffer, 0)

    if magic != _MAGIC:
        raise TemplateFormatError(f"bad format identifier {magic!r}")
    if version != _VERSION:
        raise TemplateFormatError(f"unsupported version {version!r}")
    if record_length != len(buffer):
        raise TemplateFormatError(
            f"declared length {record_length} != buffer length {len(buffer)}"
        )
    if view_count != 1:
        raise TemplateFormatError(
            f"this codec handles single-view records, got {view_count} views"
        )
    if res_x_ppcm != res_y_ppcm:
        raise TemplateFormatError(
            f"anisotropic resolution {res_x_ppcm}x{res_y_ppcm} not supported"
        )

    offset = _HEADER_SIZE
    position, view_impression, finger_quality, n_minutiae = struct.unpack_from(
        _VIEW_HEADER_FMT, buffer, offset
    )
    offset += _VIEW_HEADER_SIZE

    expected = offset + n_minutiae * _MINUTIA_SIZE + _FOOTER_SIZE
    if expected != len(buffer):
        raise TemplateFormatError(
            f"{n_minutiae} minutiae imply {expected} bytes, buffer has {len(buffer)}"
        )

    minutiae = []
    for __ in range(n_minutiae):
        word_x, word_y, angle_units, quality = struct.unpack_from(
            ">HHBB", buffer, offset
        )
        offset += _MINUTIA_SIZE
        type_code = (word_x >> 14) & 0b11
        if type_code not in _CODE_TO_TYPE:
            raise TemplateFormatError(f"unknown minutia type code {type_code}")
        minutiae.append(
            Minutia(
                x=float(word_x & 0x3FFF),
                y=float(word_y & 0x3FFF),
                angle=float(angle_units * _ANGLE_UNIT_RAD),
                kind=_CODE_TO_TYPE[type_code],
                quality=int(quality),
            )
        )

    template = Template(
        minutiae=tuple(minutiae),
        width_px=width_px,
        height_px=height_px,
        resolution_dpi=_ppcm_to_dpi(res_x_ppcm),
    )
    metadata = RecordMetadata(
        capture_device_id=device_field & 0x0FFF,
        finger_position=position,
        finger_quality=finger_quality,
        impression_type=view_impression & 0x0F,
    )
    return template, metadata


__all__ = ["encode", "decode", "RecordMetadata"]
