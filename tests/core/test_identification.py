"""1:N identification machinery."""

import numpy as np
import pytest

from repro.core.identification import (
    CmcCurve,
    Candidate,
    cmc_curve,
    cross_device_cmc,
    identification_rank,
    open_set_rates,
    rank_candidates,
    rank_candidates_scalar,
    run_identification,
)
from repro.runtime.errors import ConfigurationError


class _ScalarOnlyMatcher:
    """A matcher exposing only ``match`` (no batched 1:N path)."""

    def __init__(self, inner):
        self._inner = inner
        self.calls = 0

    def match(self, probe, gallery):
        self.calls += 1
        return self._inner.match(probe, gallery)


class _ConstantMatcher:
    """Every comparison scores the same — the all-tied edge case."""

    def match(self, probe, gallery):
        return 5.0

    def match_one_to_many(self, probe, galleries):
        return np.full(len(galleries), 5.0)


@pytest.fixture(scope="module")
def gallery(tiny_collection, tiny_config):
    return {
        f"subject-{sid}": tiny_collection.get(sid, "right_index", "D0", 0).template
        for sid in range(tiny_config.n_subjects)
    }


class TestRankCandidates:
    def test_true_identity_ranks_first(self, matcher, gallery, tiny_collection):
        probe = tiny_collection.get(3, "right_index", "D0", 1).template
        candidates = rank_candidates(matcher, probe, gallery)
        assert candidates[0].identity == "subject-3"
        assert candidates[0].score > candidates[1].score

    def test_scores_sorted_descending(self, matcher, gallery, tiny_collection):
        probe = tiny_collection.get(0, "right_index", "D1", 1).template
        candidates = rank_candidates(matcher, probe, gallery)
        scores = [c.score for c in candidates]
        assert scores == sorted(scores, reverse=True)

    def test_max_candidates(self, matcher, gallery, tiny_collection):
        probe = tiny_collection.get(0, "right_index", "D0", 1).template
        assert len(rank_candidates(matcher, probe, gallery, max_candidates=3)) == 3

    def test_empty_gallery_returns_no_candidates(self, matcher, tiny_collection):
        probe = tiny_collection.get(0, "right_index", "D0", 1).template
        assert rank_candidates(matcher, probe, {}) == []
        assert rank_candidates_scalar(matcher, probe, {}) == []

    def test_all_tied_scores_order_by_identity(self, gallery, tiny_collection):
        probe = tiny_collection.get(0, "right_index", "D0", 1).template
        candidates = rank_candidates(_ConstantMatcher(), probe, gallery)
        identities = [c.identity for c in candidates]
        assert identities == sorted(gallery)
        assert all(c.score == 5.0 for c in candidates)

    def test_scalar_fallback_for_match_only_engines(
        self, matcher, gallery, tiny_collection
    ):
        probe = tiny_collection.get(2, "right_index", "D0", 1).template
        scalar_only = _ScalarOnlyMatcher(matcher)
        candidates = rank_candidates(scalar_only, probe, gallery)
        assert scalar_only.calls == len(gallery)
        assert candidates == rank_candidates(matcher, probe, gallery)


class TestBatchedScalarParity:
    def test_batched_ranking_equals_scalar_on_500_pairs(
        self, matcher, tiny_collection, tiny_config
    ):
        """Acceptance: >= 500 probe/gallery pairs, identical rankings."""
        gallery = {
            f"{device}/subject-{sid}": tiny_collection.get(
                sid, "right_index", device, 0
            ).template
            for device in ("D0", "D1")
            for sid in range(tiny_config.n_subjects)
        }
        probes = [
            tiny_collection.get(sid, "right_index", device, 1).template
            for device in ("D0", "D1", "D2", "D3", "D4")
            for sid in range(5)
        ]
        assert len(probes) * len(gallery) >= 500
        for probe in probes:
            batched = rank_candidates(matcher, probe, gallery)
            scalar = rank_candidates_scalar(matcher, probe, gallery)
            assert [c.identity for c in batched] == [c.identity for c in scalar]
            np.testing.assert_array_equal(
                np.array([c.score for c in batched]),
                np.array([c.score for c in scalar]),
            )


class TestRankHelpers:
    def test_identification_rank(self):
        candidates = [Candidate("a", 9.0), Candidate("b", 5.0), Candidate("c", 1.0)]
        assert identification_rank(candidates, "a") == 1
        assert identification_rank(candidates, "c") == 3
        assert identification_rank(candidates, "ghost") == 0


class TestCmc:
    def test_known_ranks(self):
        curve = cmc_curve([1, 1, 2, 3, 0], max_rank=3)
        assert curve.rank1 == pytest.approx(0.4)
        assert curve.rate_at(2) == pytest.approx(0.6)
        assert curve.rate_at(3) == pytest.approx(0.8)  # the 0 never hits

    def test_monotone_nondecreasing(self):
        curve = cmc_curve([1, 3, 5, 2, 4, 0], max_rank=6)
        assert np.all(np.diff(curve.hit_rates) >= -1e-12)

    def test_rate_saturates_past_max_rank(self):
        curve = cmc_curve([1, 2], max_rank=2)
        assert curve.rate_at(50) == curve.rate_at(2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            cmc_curve([1], max_rank=0)
        with pytest.raises(ConfigurationError):
            cmc_curve([1], max_rank=3).rate_at(0)

    def test_zero_probes_yield_zero_curve(self):
        curve = cmc_curve([], max_rank=3)
        assert curve.n_probes == 0
        np.testing.assert_array_equal(curve.hit_rates, np.zeros(3))
        assert curve.rank1 == 0.0
        assert curve.rate_at(2) == 0.0

    def test_empty_curve_rate_at_is_zero(self):
        curve = CmcCurve(hit_rates=np.zeros(0), n_probes=0)
        assert curve.rank1 == 0.0
        assert curve.rate_at(1) == 0.0

    def test_absent_identities_never_hit(self):
        # Probes whose identity is missing from the gallery arrive as
        # rank 0 and must depress, not crash, the curve.
        curve = cmc_curve([0, 0, 1], max_rank=2)
        assert curve.rank1 == pytest.approx(1.0 / 3.0)
        assert curve.rate_at(2) == pytest.approx(1.0 / 3.0)

    def test_render(self):
        text = cmc_curve([1, 2, 1], max_rank=3).render()
        assert "rank   1" in text and "CMC over 3 probes" in text


class TestEndToEnd:
    def test_same_device_identification_near_perfect(
        self, tiny_study, matcher, gallery, tiny_collection, tiny_config
    ):
        probes = [
            (f"subject-{sid}",
             tiny_collection.get(sid, "right_index", "D0", 1).template)
            for sid in range(tiny_config.n_subjects)
        ]
        curve = run_identification(matcher, probes, gallery, max_rank=5)
        assert curve.rank1 >= 0.9

    def test_cross_device_cmc_degrades(self, tiny_study):
        native = cross_device_cmc(tiny_study, "D0", "D0", max_rank=5)
        ink = cross_device_cmc(tiny_study, "D0", "D4", max_rank=5)
        assert native.rank1 >= ink.rank1

    def test_open_set_rates(self, tiny_study, matcher, tiny_collection, tiny_config):
        n = tiny_config.n_subjects
        half = n // 2
        gallery = {
            f"subject-{sid}": tiny_collection.get(
                sid, "right_index", "D0", 0
            ).template
            for sid in range(half)
        }
        enrolled = [
            (f"subject-{sid}",
             tiny_collection.get(sid, "right_index", "D0", 1).template)
            for sid in range(half)
        ]
        unenrolled = [
            tiny_collection.get(sid, "right_index", "D0", 1).template
            for sid in range(half, n)
        ]
        fnir, fpir = open_set_rates(
            matcher, enrolled, unenrolled, gallery, threshold=7.5
        )
        assert fnir < 0.5
        assert fpir < 0.3

    def test_open_set_validation(self, matcher, gallery):
        with pytest.raises(ConfigurationError):
            open_set_rates(matcher, [], [], gallery, threshold=5.0)

    def test_open_set_empty_gallery_is_all_misses(
        self, matcher, tiny_collection
    ):
        probe = tiny_collection.get(0, "right_index", "D0", 1).template
        fnir, fpir = open_set_rates(
            matcher, [("subject-0", probe)], [probe], {}, threshold=5.0
        )
        assert fnir == 1.0
        assert fpir == 0.0
        # Only unenrolled probes: nothing to miss, nothing to alarm on.
        fnir, fpir = open_set_rates(matcher, [], [probe], {}, threshold=5.0)
        assert fnir == 0.0
        assert fpir == 0.0

    def test_open_set_absent_identity_counts_as_miss(
        self, matcher, gallery, tiny_collection
    ):
        probe = tiny_collection.get(0, "right_index", "D0", 1).template
        fnir, _ = open_set_rates(
            matcher, [("ghost", probe)], [], gallery, threshold=0.0
        )
        assert fnir == 1.0
