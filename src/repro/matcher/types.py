"""Template and minutia datatypes shared by the whole pipeline.

A :class:`Template` is what a feature extractor emits and what matchers
consume: minutiae in *pixel* coordinates at a known resolution, plus
image dimensions.  Coordinates follow the ANSI/INCITS 378 convention —
origin at the top-left of the image, x rightward, y downward, minutia
angle measured counterclockwise from the positive x axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..runtime.errors import MatcherError

#: Minutia kind markers (values match the INCITS 378 2-bit type field).
KIND_ENDING = 1
KIND_BIFURCATION = 2

_KIND_NAMES = {KIND_ENDING: "ending", KIND_BIFURCATION: "bifurcation"}


@dataclass(frozen=True)
class Minutia:
    """A single detected minutia.

    Attributes
    ----------
    x, y:
        Pixel coordinates (may be fractional before encoding).
    angle:
        Direction in radians, [0, 2*pi).
    kind:
        :data:`KIND_ENDING` or :data:`KIND_BIFURCATION`.
    quality:
        Detection confidence 0–100 (INCITS 378 convention).
    """

    x: float
    y: float
    angle: float
    kind: int
    quality: int = 60

    def __post_init__(self) -> None:
        if self.kind not in _KIND_NAMES:
            raise MatcherError(f"invalid minutia kind {self.kind}")
        if not 0 <= self.quality <= 100:
            raise MatcherError(f"minutia quality must be 0..100, got {self.quality}")
        if not np.isfinite(self.x) or not np.isfinite(self.y):
            raise MatcherError("minutia coordinates must be finite")
        if not 0.0 <= self.angle < 2.0 * np.pi + 1e-9:
            raise MatcherError(f"minutia angle must be in [0, 2*pi), got {self.angle}")

    @property
    def kind_name(self) -> str:
        """Human-readable kind."""
        return _KIND_NAMES[self.kind]


@dataclass(frozen=True)
class Template:
    """A fingerprint template: minutiae + capture metadata.

    Attributes
    ----------
    minutiae:
        The detected minutiae.
    width_px, height_px:
        Source image dimensions.
    resolution_dpi:
        Capture resolution (500 for every device in the study).
    """

    minutiae: Tuple[Minutia, ...]
    width_px: int
    height_px: int
    resolution_dpi: int = 500

    def __post_init__(self) -> None:
        if self.width_px <= 0 or self.height_px <= 0:
            raise MatcherError("template image dimensions must be positive")
        if self.resolution_dpi <= 0:
            raise MatcherError("resolution must be positive")

    def __len__(self) -> int:
        return len(self.minutiae)

    def content_key(self) -> Tuple[int, int, int]:
        """Cheap content fingerprint for memoization.

        Unlike ``id()``, this key survives the allocator recycling object
        addresses, so caches keyed by it can never serve another
        template's data.  Computed once per instance (the memo write uses
        ``object.__setattr__`` because the dataclass is frozen).
        """
        key = self.__dict__.get("_content_key")
        if key is None:
            key = (len(self.minutiae), self.resolution_dpi, hash(self.minutiae))
            object.__setattr__(self, "_content_key", key)
        return key

    @property
    def pixels_per_mm(self) -> float:
        """Conversion factor from millimetres to pixels."""
        return self.resolution_dpi / 25.4

    def positions_px(self) -> np.ndarray:
        """(n, 2) array of minutia pixel positions."""
        if not self.minutiae:
            return np.zeros((0, 2), dtype=np.float64)
        return np.array([[m.x, m.y] for m in self.minutiae], dtype=np.float64)

    def positions_mm(self) -> np.ndarray:
        """(n, 2) array of positions in millimetres (matcher-internal unit)."""
        return self.positions_px() / self.pixels_per_mm

    def angles(self) -> np.ndarray:
        """(n,) array of minutia directions in radians."""
        if not self.minutiae:
            return np.zeros(0, dtype=np.float64)
        return np.array([m.angle for m in self.minutiae], dtype=np.float64)

    def kinds(self) -> np.ndarray:
        """(n,) array of kind codes."""
        if not self.minutiae:
            return np.zeros(0, dtype=np.int64)
        return np.array([m.kind for m in self.minutiae], dtype=np.int64)

    def qualities(self) -> np.ndarray:
        """(n,) array of per-minutia qualities (0–100)."""
        if not self.minutiae:
            return np.zeros(0, dtype=np.int64)
        return np.array([m.quality for m in self.minutiae], dtype=np.int64)


def template_from_arrays(
    positions_px: Sequence[Sequence[float]],
    angles: Sequence[float],
    kinds: Sequence[int],
    qualities: Sequence[int],
    width_px: int,
    height_px: int,
    resolution_dpi: int = 500,
) -> Template:
    """Assemble a :class:`Template` from parallel arrays (pipeline helper)."""
    pos = np.asarray(positions_px, dtype=np.float64).reshape(-1, 2)
    ang = np.asarray(angles, dtype=np.float64).ravel()
    knd = np.asarray(kinds, dtype=np.int64).ravel()
    qua = np.asarray(qualities, dtype=np.int64).ravel()
    if not (len(pos) == len(ang) == len(knd) == len(qua)):
        raise MatcherError("parallel minutia arrays must have equal length")
    minutiae = tuple(
        Minutia(
            x=float(pos[i, 0]),
            y=float(pos[i, 1]),
            angle=float(np.mod(ang[i], 2.0 * np.pi)),
            kind=int(knd[i]),
            quality=int(np.clip(qua[i], 0, 100)),
        )
        for i in range(len(pos))
    )
    return Template(
        minutiae=minutiae,
        width_px=width_px,
        height_px=height_px,
        resolution_dpi=resolution_dpi,
    )


__all__ = [
    "Minutia",
    "Template",
    "template_from_arrays",
    "KIND_ENDING",
    "KIND_BIFURCATION",
]
