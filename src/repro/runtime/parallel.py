"""Parallel map for score generation.

The paper's experiment evaluates ~616,000 matcher invocations.  This
module provides :func:`parallel_map`: a chunked, order-preserving map
over a process pool that degrades gracefully to a sequential loop when
``n_workers == 0`` (the default for tests) or when the workload is too
small to amortize process start-up.

Both maps execute on the supervised core
(:mod:`repro.runtime.supervisor`): futures are collected as they
complete with index bookkeeping — a slow first chunk no longer delays
progress reporting, and every completed future is drained before an
error propagates — while transient failures, hangs and broken pools are
retried under the active :class:`~repro.runtime.supervisor.RetryPolicy`.
Output order (and the ``on_result`` firing order) remains input order
regardless of completion order.

Functions submitted to the pool must be picklable module-level callables;
per-chunk work is deterministic because chunk boundaries depend only on
``len(items)`` and ``chunk_size``, never on scheduling.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from .config import resolve_worker_count
from .supervisor import RetryPolicy, default_task_keys, supervised_map_batched
from .telemetry import get_recorder

T = TypeVar("T")
R = TypeVar("R")

#: Below this many items a pool is never worth its start-up cost.
_MIN_ITEMS_FOR_POOL = 64


def chunk_indices(n_items: int, chunk_size: int) -> List[range]:
    """Split ``range(n_items)`` into consecutive ranges of ``chunk_size``."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        range(start, min(start + chunk_size, n_items))
        for start in range(0, n_items, chunk_size)
    ]


def _apply_chunk(func: Callable[[T], R], items: Sequence[T]) -> List[R]:
    """Worker body: map ``func`` over one chunk (module-level, picklable)."""
    return [func(item) for item in items]


def _apply_chunk_timed(
    func: Callable[[T], R], items: Sequence[T]
) -> Tuple[List[R], float]:
    """Worker body that also reports the chunk's wall-clock seconds.

    The timing happens *in the worker* so it measures compute, not the
    parent's result-collection order; the parent feeds it into the
    ``parallel.chunk_seconds`` histogram.
    """
    start = time.perf_counter()
    results = [func(item) for item in items]
    return results, time.perf_counter() - start


def parallel_map(
    func: Callable[[T], R],
    items: Sequence[T],
    n_workers: int = 0,
    chunk_size: int = 256,
    policy: Optional[RetryPolicy] = None,
) -> List[R]:
    """Map ``func`` over ``items``, optionally on a supervised pool.

    Results are returned in input order regardless of worker scheduling.

    Parameters
    ----------
    func:
        A picklable callable (module-level function or partial of one).
    items:
        The work items; must be a sequence (indexable, sized).
    n_workers:
        Requested pool width.  ``0`` (default) runs sequentially in the
        calling process, which is also the fallback for tiny workloads.
    chunk_size:
        Items per task submitted to the pool; larger chunks amortize IPC.
    policy:
        Retry/timeout policy for the supervised execution; ``None`` uses
        :meth:`RetryPolicy.from_environment`.
    """
    effective = resolve_worker_count(n_workers)
    if effective <= 1 or len(items) < _MIN_ITEMS_FOR_POOL:
        return [func(item) for item in items]

    recorder = get_recorder()
    chunks = chunk_indices(len(items), chunk_size)
    if recorder.active:
        recorder.gauge("parallel.workers", float(effective))
        recorder.count("parallel.chunks", len(chunks))
        recorder.count("parallel.items", len(items))
    payloads = [[items[i] for i in chunk] for chunk in chunks]
    parts = supervised_map_batched(
        functools.partial(_apply_chunk, func),
        payloads,
        n_workers=effective,
        policy=policy if policy is not None else RetryPolicy.from_environment(),
        task_keys=default_task_keys("map", len(payloads)),
        metric="parallel.chunk_seconds",
    )
    results: List[R] = []
    for part in parts:
        results.extend(part)
    return results


def parallel_map_batched(
    func: Callable[[T], R],
    batches: Sequence[T],
    n_workers: int = 0,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
    on_result: Optional[Callable[[R], None]] = None,
    policy: Optional[RetryPolicy] = None,
    task_keys: Optional[Sequence[str]] = None,
    fail_fast: bool = True,
) -> List[R]:
    """Apply ``func`` to each pre-formed batch, one pool task per batch.

    Unlike :func:`parallel_map`, the *caller* controls chunking: a batch
    is the unit an optimized kernel wants dispatched whole (for score
    generation, every job sharing one gallery template).  Results are
    per-batch, in input order.

    ``initializer``/``initargs`` seed per-worker state exactly as on
    :class:`~concurrent.futures.ProcessPoolExecutor` (the sequential
    fallback calls the initializer once in-process, so ``func`` sees the
    same state either way).  ``on_result`` fires once per batch, in
    input order, as soon as the ordered prefix is complete — the hook
    for streaming progress and checkpoints without waiting for the full
    map.

    ``policy`` configures retry/backoff/timeout supervision (default:
    :meth:`RetryPolicy.from_environment`); ``task_keys`` names each
    batch for deterministic jitter, fault targeting and logs; with
    ``fail_fast=False`` a permanently failed batch yields ``None``
    instead of aborting the run (and counts ``supervisor.skipped``).

    Telemetry (when enabled): ``parallel.batches`` counts dispatches and
    ``parallel.batch_seconds`` observes each batch's compute seconds,
    measured in the worker so scheduling skew never inflates it.
    """
    recorder = get_recorder()
    if recorder.active:
        recorder.count("parallel.batches", len(batches))
    effective = resolve_worker_count(n_workers)
    if recorder.active and effective > 1 and len(batches) > 1:
        recorder.gauge("parallel.workers", float(effective))
    return supervised_map_batched(
        func,
        batches,
        n_workers=effective,
        initializer=initializer,
        initargs=initargs,
        on_result=on_result,
        policy=policy if policy is not None else RetryPolicy.from_environment(),
        task_keys=task_keys,
        fail_fast=fail_fast,
        metric="parallel.batch_seconds",
    )


def sequential_map(func: Callable[[T], R], items: Iterable[T]) -> List[R]:
    """Plain list-building map, for symmetry with :func:`parallel_map`."""
    return [func(item) for item in items]


__all__ = [
    "parallel_map",
    "parallel_map_batched",
    "sequential_map",
    "chunk_indices",
]
