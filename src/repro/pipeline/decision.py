"""Verification decisions and audit trail.

Every verification attempt produces a :class:`VerificationDecision` — a
complete, self-describing record of what the system saw and why it
decided: raw and normalized score, the devices involved (known or
inferred), which mitigations were applied, and the operating threshold.
The :class:`AuditLog` accumulates decisions so operators can compute
per-device-pair error rates exactly the way the paper's Tables 5/6 do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np


@dataclass(frozen=True)
class VerificationDecision:
    """Outcome of one verification attempt.

    Attributes
    ----------
    identity:
        The claimed identity.
    accepted:
        The system's decision.
    raw_score:
        Matcher output before normalization.
    normalized_score:
        Score on the decision scale (equals ``raw_score`` when no
        normalization is configured).
    threshold:
        The operating threshold the decision used.
    gallery_device, probe_device:
        Devices involved; ``probe_device`` may have been inferred.
    probe_device_inferred:
        Whether the probe device came from p(d|q) inference rather than
        being declared by the capture station.
    calibration_applied:
        Whether inter-sensor TPS compensation was applied to the probe.
    """

    identity: str
    accepted: bool
    raw_score: float
    normalized_score: float
    threshold: float
    gallery_device: str = ""
    probe_device: str = ""
    probe_device_inferred: bool = False
    calibration_applied: bool = False


class AuditLog:
    """Append-only log of verification decisions."""

    def __init__(self) -> None:
        self._decisions: List[VerificationDecision] = []

    def append(self, decision: VerificationDecision) -> None:
        """Record one decision."""
        self._decisions.append(decision)

    def __len__(self) -> int:
        return len(self._decisions)

    def __iter__(self) -> Iterator[VerificationDecision]:
        return iter(self._decisions)

    def acceptance_rate(self) -> float:
        """Fraction of logged attempts that were accepted."""
        if not self._decisions:
            return 0.0
        return sum(d.accepted for d in self._decisions) / len(self._decisions)

    def by_device_pair(self) -> Dict[Tuple[str, str], List[VerificationDecision]]:
        """Decisions grouped by (gallery device, probe device)."""
        groups: Dict[Tuple[str, str], List[VerificationDecision]] = {}
        for decision in self._decisions:
            key = (decision.gallery_device, decision.probe_device)
            groups.setdefault(key, []).append(decision)
        return groups

    def rejection_rate_matrix(self) -> Dict[Tuple[str, str], float]:
        """Per-device-pair rejection rates (the operator's Table 5 view)."""
        return {
            pair: 1.0 - float(np.mean([d.accepted for d in decisions]))
            for pair, decisions in self.by_device_pair().items()
        }

    def render(self, limit: int = 20) -> str:
        """Human-readable tail of the log."""
        lines = [f"AuditLog: {len(self)} decisions, "
                 f"acceptance rate {self.acceptance_rate():.3f}"]
        for decision in self._decisions[-limit:]:
            verdict = "ACCEPT" if decision.accepted else "REJECT"
            flags = []
            if decision.probe_device_inferred:
                flags.append("inferred-device")
            if decision.calibration_applied:
                flags.append("tps")
            lines.append(
                f"  {verdict}  {decision.identity:<14} "
                f"raw={decision.raw_score:6.2f} norm={decision.normalized_score:6.2f} "
                f"thr={decision.threshold:5.2f} "
                f"{decision.gallery_device or '?'}<-{decision.probe_device or '?'}"
                f"{'  [' + ','.join(flags) + ']' if flags else ''}"
            )
        return "\n".join(lines)


__all__ = ["VerificationDecision", "AuditLog"]
