"""Load-or-build acquisition: determinism, parallel equality, corruption."""

import numpy as np
import pytest

from repro.datasets import (
    build_collection,
    load_quality_arrays,
    subject_artifact_digest,
    warm_artifacts,
)
from repro.runtime.artifacts import ArtifactStore
from repro.runtime.config import StudyConfig
from repro.runtime.telemetry import enable_telemetry, get_recorder, set_recorder
from repro.sensors.protocol import ProtocolSettings


@pytest.fixture()
def recorder():
    previous = get_recorder()
    live = enable_telemetry()
    yield live
    set_recorder(previous)


CFG = StudyConfig(n_subjects=4, master_seed=77)


class TestDigest:
    def test_deterministic_across_calls(self):
        assert subject_artifact_digest(CFG, 0) == subject_artifact_digest(
            StudyConfig(n_subjects=4, master_seed=77), 0
        )

    def test_distinct_per_subject(self):
        digests = {subject_artifact_digest(CFG, s) for s in range(4)}
        assert len(digests) == 4

    def test_seed_changes_digest(self):
        other = StudyConfig(n_subjects=4, master_seed=78)
        assert subject_artifact_digest(CFG, 0) != subject_artifact_digest(other, 0)

    def test_protocol_changes_digest(self):
        gated = ProtocolSettings(quality_gating=True)
        assert subject_artifact_digest(CFG, 0) != subject_artifact_digest(
            CFG, 0, gated
        )

    def test_storage_fields_do_not_change_digest(self, tmp_path):
        relocated = CFG.replace(
            artifact_dir=str(tmp_path), cache_dir=str(tmp_path), n_workers=2
        )
        assert subject_artifact_digest(CFG, 1) == subject_artifact_digest(
            relocated, 1
        )


class TestLoadOrBuild:
    def test_warm_equals_cold(self, tmp_path):
        config = CFG.replace(artifact_dir=str(tmp_path / "arts"))
        cold = build_collection(config)
        warm = build_collection(config)
        assert warm == cold

    def test_warm_equals_storeless(self, tmp_path):
        config = CFG.replace(artifact_dir=str(tmp_path / "arts"))
        build_collection(config)
        assert build_collection(config) == build_collection(CFG)

    def test_warm_load_hits_counted(self, tmp_path, recorder):
        config = CFG.replace(artifact_dir=str(tmp_path / "arts"))
        build_collection(config)
        assert recorder.metrics.counter_value("artifacts.miss") == 4
        build_collection(config)
        assert recorder.metrics.counter_value("artifacts.hit") == 4
        counters = recorder.metrics.snapshot()["counters"]
        assert counters["acquisition.subjects_loaded"] == 4
        assert counters["acquisition.subjects_built"] == 4

    def test_partial_store_builds_only_misses(self, tmp_path, recorder):
        config = CFG.replace(artifact_dir=str(tmp_path / "arts"))
        cold = build_collection(config)
        store = ArtifactStore(config.artifact_dir)
        victim = subject_artifact_digest(config, 2)
        assert store.invalidate("impressions", victim)
        rebuilt = build_collection(config)
        assert rebuilt == cold
        counters = recorder.metrics.snapshot()["counters"]
        assert counters["acquisition.subjects_built"] == 4 + 1

    def test_corrupt_entry_rebuilt(self, tmp_path):
        arts = tmp_path / "arts"
        config = CFG.replace(artifact_dir=str(arts))
        cold = build_collection(config)
        victim = subject_artifact_digest(config, 1)
        (arts / "impressions" / f"{victim}.npz").write_bytes(
            b"PK\x03\x04" + b"\x00" * 64
        )
        assert build_collection(config) == cold
        # The rebuilt entry replaced the torn one, so the next run is warm.
        store = ArtifactStore(str(arts))
        assert store.load("impressions", victim) is not None

    def test_undecodable_bundle_rebuilt(self, tmp_path, recorder):
        # A structurally valid npz whose arrays are inconsistent must be
        # treated exactly like a torn file: dropped, rebuilt, re-stored.
        arts = tmp_path / "arts"
        config = CFG.replace(artifact_dir=str(arts))
        cold = build_collection(config)
        store = ArtifactStore(str(arts))
        victim = subject_artifact_digest(config, 0)
        bundle = store.load("impressions", victim)
        bundle["minutia_offsets"] = bundle["minutia_offsets"][:-1]
        store.store("impressions", victim, bundle)
        assert build_collection(config) == cold
        assert recorder.metrics.counter_value("artifacts.corrupt") == 1

    def test_different_seed_is_cold(self, tmp_path, recorder):
        arts = str(tmp_path / "arts")
        build_collection(CFG.replace(artifact_dir=arts))
        build_collection(
            StudyConfig(n_subjects=4, master_seed=78, artifact_dir=arts)
        )
        assert recorder.metrics.counter_value("artifacts.hit") == 0


class TestParallelAcquisition:
    def test_parallel_cold_equals_serial(self, tmp_path):
        base = StudyConfig(n_subjects=8, master_seed=321)
        serial = build_collection(base)
        parallel = build_collection(
            base.replace(n_workers=2, artifact_dir=str(tmp_path / "arts"))
        )
        assert parallel == serial

    def test_serial_warm_load_after_parallel_build(self, tmp_path):
        arts = str(tmp_path / "arts")
        base = StudyConfig(n_subjects=8, master_seed=321)
        parallel = build_collection(base.replace(n_workers=2, artifact_dir=arts))
        warm = build_collection(base.replace(artifact_dir=arts))
        assert warm == parallel

    def test_pool_fanout_equals_serial(self, tmp_path, monkeypatch, recorder):
        # resolve_worker_count caps to the machine's CPUs, so on a 1-CPU
        # runner the pool branch would silently degrade to serial; force
        # a real 2-process pool to exercise worker-side acquisition.
        import repro.datasets.wvu2012 as wvu2012

        monkeypatch.setattr(wvu2012, "resolve_worker_count", lambda n: 2)
        base = StudyConfig(n_subjects=8, master_seed=5)
        pooled = build_collection(
            base.replace(n_workers=2, artifact_dir=str(tmp_path / "arts"))
        )
        counters = recorder.metrics.snapshot()["counters"]
        assert counters["acquire.parallel.subjects"] == 8
        assert "acquire.parallel.seconds" in recorder.metrics.snapshot()[
            "histograms"
        ]
        monkeypatch.undo()
        assert pooled == build_collection(base)


class TestQualityTier:
    def test_quality_arrays_complete_after_build(self, tmp_path):
        config = CFG.replace(artifact_dir=str(tmp_path / "arts"))
        collection = build_collection(config)
        arrays = load_quality_arrays(config)
        assert arrays is not None
        assert len(arrays["nfiq"]) == len(collection)
        by_key = {
            (i.subject_id, i.finger_label, i.device_id, i.set_index): i.nfiq
            for i in collection
        }
        for k in range(len(arrays["nfiq"])):
            key = (
                int(arrays["subject_id"][k]),
                str(arrays["finger"][k]),
                str(arrays["device"][k]),
                int(arrays["set_index"][k]),
            )
            assert by_key[key] == int(arrays["nfiq"][k])

    def test_quality_arrays_none_when_cold(self, tmp_path):
        assert load_quality_arrays(
            CFG.replace(artifact_dir=str(tmp_path / "empty"))
        ) is None

    def test_quality_arrays_none_when_disabled(self):
        assert load_quality_arrays(CFG) is None


class TestWarmArtifacts:
    def test_warm_reports_stats(self, tmp_path):
        config = CFG.replace(artifact_dir=str(tmp_path / "arts"))
        stats = warm_artifacts(config)
        assert stats["impressions"]["entries"] == 4
        assert stats["quality"]["entries"] == 4
        assert stats["total"]["bytes"] > 0

    def test_warm_then_build_is_all_hits(self, tmp_path, recorder):
        config = CFG.replace(artifact_dir=str(tmp_path / "arts"))
        warm_artifacts(config)
        build_collection(config)
        assert recorder.metrics.counter_value("artifacts.hit") == 4
