"""Array codec for acquired impressions.

The artifact store persists numpy-array bundles; this module is the
bridge between those bundles and the acquisition pipeline's rich
:class:`~repro.sensors.base.Impression` objects.  Encoding is lossless:
every float travels as float64 and every structural field round-trips
exactly, so a decoded impression compares equal (``==``) to the one the
sensors produced — which is what lets determinism tests assert
bit-identical collections across cold builds, warm loads and parallel
acquisition.

Layout (one bundle per subject session, ``n`` impressions, ``m`` total
minutiae):

===================  =========================================================
array                contents
===================  =========================================================
``subject_id``       int64[n]
``finger``           str[n] finger labels
``device``           str[n] device ids
``set_index``        int64[n]
``presentation``     int64[n] presentation counters
``nfiq``             int64[n]
``image_meta``       int64[n, 3] (width_px, height_px, resolution_dpi)
``features``         float64[n, 5] quality-feature fields, declaration order
``feature_counts``   int64[n] minutiae_count (the one integer feature)
``conditions``       float64[n, 3] (pressure, moisture, sloppiness)
``minutia_offsets``  int64[n + 1] prefix offsets into ``minutiae``
``minutiae``         float64[m, 5] (x, y, angle, kind, quality)
===================  =========================================================
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..matcher.types import template_from_arrays
from ..quality.features import QualityFeatures
from .base import Impression
from .noise import PresentationConditions

#: One minutia row: x_px, y_px, angle, kind, quality.
_MINUTIA_FIELDS = 5

#: Float-valued QualityFeatures fields, in declaration order.
_FEATURE_FIELDS = (
    "contact_area_fraction",
    "mean_coherence",
    "dryness_artifact",
    "noise_level",
    "mean_minutia_quality",
)


def impressions_to_arrays(
    impressions: Sequence[Impression],
) -> Dict[str, np.ndarray]:
    """Encode ``impressions`` as a dict of numpy arrays (lossless)."""
    n = len(impressions)
    subject_id = np.empty(n, dtype=np.int64)
    finger = np.empty(n, dtype="<U24")
    device = np.empty(n, dtype="<U4")
    set_index = np.empty(n, dtype=np.int64)
    presentation = np.empty(n, dtype=np.int64)
    nfiq = np.empty(n, dtype=np.int64)
    image_meta = np.empty((n, 3), dtype=np.int64)
    features = np.empty((n, len(_FEATURE_FIELDS)), dtype=np.float64)
    feature_counts = np.empty(n, dtype=np.int64)
    conditions = np.empty((n, 3), dtype=np.float64)
    offsets = np.zeros(n + 1, dtype=np.int64)

    blocks: List[np.ndarray] = []
    for k, impression in enumerate(impressions):
        template = impression.template
        subject_id[k] = impression.subject_id
        finger[k] = impression.finger_label
        device[k] = impression.device_id
        set_index[k] = impression.set_index
        presentation[k] = impression.presentation_index
        nfiq[k] = impression.nfiq
        image_meta[k] = (
            template.width_px, template.height_px, template.resolution_dpi
        )
        features[k] = [
            getattr(impression.features, name) for name in _FEATURE_FIELDS
        ]
        feature_counts[k] = impression.features.minutiae_count
        conditions[k] = (
            impression.conditions.pressure,
            impression.conditions.moisture,
            impression.conditions.sloppiness,
        )
        rows = np.empty((len(template), _MINUTIA_FIELDS), dtype=np.float64)
        if len(template):
            rows[:, 0:2] = template.positions_px()
            rows[:, 2] = template.angles()
            rows[:, 3] = template.kinds()
            rows[:, 4] = template.qualities()
        blocks.append(rows)
        offsets[k + 1] = offsets[k] + len(template)

    minutiae = (
        np.concatenate(blocks, axis=0)
        if blocks
        else np.zeros((0, _MINUTIA_FIELDS), dtype=np.float64)
    )
    return {
        "subject_id": subject_id,
        "finger": finger,
        "device": device,
        "set_index": set_index,
        "presentation": presentation,
        "nfiq": nfiq,
        "image_meta": image_meta,
        "features": features,
        "feature_counts": feature_counts,
        "conditions": conditions,
        "minutia_offsets": offsets,
        "minutiae": minutiae,
    }


def impressions_from_arrays(
    arrays: Dict[str, np.ndarray],
) -> List[Impression]:
    """Decode a bundle produced by :func:`impressions_to_arrays`.

    Raises ``KeyError``/``ValueError`` on a malformed bundle; artifact
    consumers treat those as cache misses, mirroring the corruption
    semantics of the store itself.
    """
    n = int(len(arrays["subject_id"]))
    offsets = arrays["minutia_offsets"]
    minutiae = arrays["minutiae"]
    if len(offsets) != n + 1 or int(offsets[-1]) != len(minutiae):
        raise ValueError("impression bundle offsets are inconsistent")
    impressions: List[Impression] = []
    for k in range(n):
        rows = minutiae[int(offsets[k]) : int(offsets[k + 1])]
        width_px, height_px, dpi = (int(v) for v in arrays["image_meta"][k])
        template = template_from_arrays(
            positions_px=rows[:, 0:2],
            angles=rows[:, 2],
            kinds=rows[:, 3].astype(np.int64),
            qualities=rows[:, 4].astype(np.int64),
            width_px=width_px,
            height_px=height_px,
            resolution_dpi=dpi,
        )
        float_features = arrays["features"][k]
        features = QualityFeatures(
            minutiae_count=int(arrays["feature_counts"][k]),
            **{
                name: float(float_features[j])
                for j, name in enumerate(_FEATURE_FIELDS)
            },
        )
        pressure, moisture, sloppiness = arrays["conditions"][k]
        impressions.append(
            Impression(
                subject_id=int(arrays["subject_id"][k]),
                finger_label=str(arrays["finger"][k]),
                device_id=str(arrays["device"][k]),
                set_index=int(arrays["set_index"][k]),
                presentation_index=int(arrays["presentation"][k]),
                template=template,
                features=features,
                nfiq=int(arrays["nfiq"][k]),
                conditions=PresentationConditions(
                    pressure=float(pressure),
                    moisture=float(moisture),
                    sloppiness=float(sloppiness),
                ),
            )
        )
    return impressions


def quality_to_arrays(
    impressions: Sequence[Impression],
) -> Dict[str, np.ndarray]:
    """Encode only the quality evidence of ``impressions``.

    The ``quality`` artifact tier stores this compact form so quality
    analyses (NFIQ distributions, device-inference features) can warm-load
    without decoding any minutia data.
    """
    full = impressions_to_arrays(impressions)
    return {
        name: full[name]
        for name in (
            "subject_id", "finger", "device", "set_index",
            "nfiq", "features", "feature_counts",
        )
    }


__all__ = [
    "impressions_to_arrays",
    "impressions_from_arrays",
    "quality_to_arrays",
]
