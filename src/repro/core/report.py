"""Text renderers for every table and figure in the paper.

Every artifact renders to plain text so the full evaluation regenerates
in a headless terminal and can be diffed in CI.  The benchmark harness
prints these; EXPERIMENTS.md embeds them next to the published values.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..sensors.registry import DEVICE_ORDER, table1_rows
from ..stats.descriptive import summarize
from ..stats.histogram import (
    FrequencySurface,
    render_overlaid,
    score_histogram,
)
from ..stats.kendall import KendallResult
from .kendall_analysis import TABLE4_COLS, TABLE4_ROWS
from .scores import ScoreSet


def render_table1() -> str:
    """Table 1: characteristics of the live-scan devices."""
    lines = [
        "Table 1: Live-scan devices",
        f"{'Device':<7}{'Model':<42}{'dpi':>5}  {'Image (px)':<12}{'Area (mm)':<12}",
    ]
    for row in table1_rows():
        lines.append(
            f"{row['device']:<7}{row['model']:<42}{row['resolution_dpi']:>5}  "
            f"{row['image_size_px']:<12}{row['capture_area_mm']:<12}"
        )
    return "\n".join(lines)


def render_table3(score_sets: Dict[str, ScoreSet], n_subjects: int) -> str:
    """Table 3: score counts per matching scenario."""
    devices = {"DMG": 4, "DDMG": 5, "DMI": 5, "DDMI": 5}
    lines = [
        "Table 3: Match scores per scenario",
        f"{'Matching':<8}{'Subjects':>9}{'Devices':>9}{'Scores':>12}",
    ]
    for scenario in ("DMG", "DDMG", "DMI", "DDMI"):
        n = len(score_sets[scenario])
        lines.append(
            f"{scenario:<8}{n_subjects:>9}{devices[scenario]:>9}{n:>12,}"
        )
    return "\n".join(lines)


def render_table4(results: Dict[Tuple[str, str], KendallResult]) -> str:
    """Table 4: p-values from Kendall's rank correlation test."""
    header = " " * 6 + "".join(f"{'DX-' + c:>12}" for c in TABLE4_COLS)
    lines = ["Table 4: Kendall rank-correlation p-values", header]
    for row in TABLE4_ROWS:
        cells = "".join(f"{results[(row, col)].p_value:>12.2e}" for col in TABLE4_COLS)
        lines.append(f"{row:<6}" + cells)
    return "\n".join(lines)


def render_fnmr_matrix(matrix: np.ndarray, title: str) -> str:
    """Tables 5/6: an FNMR matrix, gallery rows x probe columns."""
    header = " " * 6 + "".join(f"{c:>12}" for c in DEVICE_ORDER)
    lines = [title, header]
    for i, row_dev in enumerate(DEVICE_ORDER):
        cells = []
        for j in range(len(DEVICE_ORDER)):
            value = matrix[i, j]
            cells.append(f"{'--':>12}" if np.isnan(value) else f"{value:>12.2e}")
        lines.append(f"{row_dev:<6}" + "".join(cells))
    return "\n".join(lines)


def render_figure1(demographics: Dict[str, Dict[str, int]]) -> str:
    """Figure 1: age and ethnicity groups of the participants."""
    lines = ["Figure 1: Participant demographics"]
    total = sum(demographics["age"].values())
    for section in ("age", "ethnicity"):
        lines.append(f"  {section}:")
        for label, count in demographics[section].items():
            pct = 100.0 * count / total if total else 0.0
            bar = "#" * int(round(pct / 2))
            lines.append(f"    {label:<18}{count:>6} ({pct:5.1f}%) |{bar}")
    return "\n".join(lines)


def render_score_histograms(
    genuine: ScoreSet, impostor: ScoreSet, title: str, bin_width: float = 1.0
) -> str:
    """Figures 2/3: overlaid genuine/impostor score histograms."""
    hi = float(np.ceil(max(genuine.scores.max(), impostor.scores.max()))) + 1.0
    hist_g = score_histogram(
        genuine.scores, bin_width=bin_width, score_range=(0.0, hi),
        label=genuine.scenario,
    )
    hist_i = score_histogram(
        impostor.scores, bin_width=bin_width, score_range=(0.0, hi),
        label=impostor.scenario,
    )
    return title + "\n" + render_overlaid(hist_g, hist_i)


def render_figure4(
    per_probe_genuine: Dict[str, np.ndarray], gallery_device: str
) -> str:
    """Figure 4: genuine score distributions per probe device vs one gallery.

    The paper plots the ordered DDMG scores per sensor pair; in text we
    report the distribution summaries, ordered by mean — "matching scores
    of any Live-scan devices are higher than those obtained from
    ten-prints".
    """
    lines = [f"Figure 4: genuine scores by probe device (gallery = {gallery_device})"]
    ordered = sorted(
        per_probe_genuine.items(), key=lambda kv: -float(np.mean(kv[1]))
    )
    for probe_device, scores in ordered:
        summary = summarize(scores)
        marker = " (same device)" if probe_device == gallery_device else ""
        lines.append(
            f"  probe {probe_device}{marker}: {summary.render()}"
        )
    return "\n".join(lines)


def render_figure5(surface_same: FrequencySurface, surface_cross: FrequencySurface) -> str:
    """Figure 5: low-genuine-score frequency by (gallery, probe) quality."""
    return (
        "Figure 5(a): DMG scores < 10 by quality pair\n"
        + surface_same.render(row_title="gallery NFIQ", col_title="probe NFIQ")
        + "\n\nFigure 5(b): DDMG scores < 10 by quality pair\n"
        + surface_cross.render(row_title="gallery NFIQ", col_title="probe NFIQ")
    )


__all__ = [
    "render_table1",
    "render_table3",
    "render_table4",
    "render_fnmr_matrix",
    "render_figure1",
    "render_score_histograms",
    "render_figure4",
    "render_figure5",
]
