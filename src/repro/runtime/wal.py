"""Write-ahead log for the serving gallery: durable before acknowledged.

The gallery's ``.npz`` shards are atomic against *process* crashes
(write-to-temp, rename) but not durable against power loss, and they
say nothing about operations in flight.  :class:`WriteAheadLog` closes
that gap the classic way: every mutation is appended — and, per the
fsync policy, forced to stable storage — *before* it is applied, so an
acknowledged operation can always be replayed.

Format
------
A log is a directory of segment files named ``<first_lsn>.wal``
(zero-padded decimal), appended in order.  Each record is one frame::

    +----------------+----------------+------------------------+
    | length (u32le) | crc32 (u32le)  | payload (length bytes) |
    +----------------+----------------+------------------------+

The payload is canonical JSON (sorted keys) carrying at least ``lsn``
(monotonic from 1) and ``op``; everything else is the operation's own
business.  Numpy arrays travel as ``{"dtype", "shape", "data"}`` with
base64 bytes (:func:`encode_array` / :func:`decode_array`), so an
enrollment's template replays bit-identically.

Replay rules
------------
* A frame that runs past end-of-file, or whose CRC fails at the very
  end of the *final* segment, is a **torn tail**: the crash interrupted
  the last append.  Replay truncates it away — the op was never acked.
* Any other invalid frame is a **corrupt mid-log record**: an acked
  write has rotted.  Replay refuses with
  :class:`WalCorruptionError` — loud operator intervention beats
  silently dropping acknowledged data.  (The gallery's ``.npz`` shards
  hold every *applied* record, so recovery is deleting the bad
  segments and reloading; nothing acked is lost.)

Knobs (environment, overridable per constructor)
------------------------------------------------
``REPRO_WAL_SYNC``
    ``always`` (default) — fsync after every append: acked ⇒ durable.
    ``rotate`` — fsync only when a segment seals; a power cut may lose
    the active segment's tail (process crashes still lose nothing).
    ``never`` — leave flushing to the OS; fastest, weakest.
``REPRO_WAL_SEGMENT_BYTES``
    Rotation threshold (default 4 MiB).
``REPRO_WAL_KEEP_SEGMENTS``
    Sealed segments retained past a checkpoint (default 4) so a
    follower briefly offline can still catch up from the log.

:class:`WalFollower` tails a log directory another process appends to:
``poll()`` returns newly completed records, treating an incomplete or
CRC-failing tail of the *newest* segment as "not written yet" (retry
later) rather than corruption.
"""

from __future__ import annotations

import base64
import binascii
import json
import os
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from . import faults
from .config import env_int, env_str
from .errors import ConfigurationError, ReproError
from .telemetry import get_logger, get_recorder

#: Frame header: payload length then CRC-32 of the payload, both u32le.
HEADER = struct.Struct("<II")

#: Sanity ceiling on one record — a larger declared length is garbage.
MAX_RECORD_BYTES = 64 * 1024 * 1024

#: Environment knob names.
ENV_SYNC = "REPRO_WAL_SYNC"
ENV_SEGMENT_BYTES = "REPRO_WAL_SEGMENT_BYTES"
ENV_KEEP_SEGMENTS = "REPRO_WAL_KEEP_SEGMENTS"

#: Recognised fsync policies.
SYNC_POLICIES = ("always", "rotate", "never")

DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024
DEFAULT_KEEP_SEGMENTS = 4

#: Width of the zero-padded first-LSN in a segment file name.
_SEGMENT_DIGITS = 16

#: The checkpoint marker: ``{"lsn": n}``, written atomically.
_CHECKPOINT_NAME = "CHECKPOINT.json"

_log = get_logger("runtime.wal")


class WalError(ReproError):
    """The write-ahead log could not complete an operation."""


class WalCorruptionError(WalError):
    """Replay met a corrupt record that is not a torn tail.

    Deliberately fatal: an acknowledged record has rotted mid-log, and
    pretending otherwise would turn durability into a lie.  The error
    names the segment and byte offset so an operator can inspect it.
    """


@dataclass(frozen=True)
class WalRecord:
    """One replayed log record: its sequence number, op, and payload."""

    lsn: int
    op: str
    data: dict


def encode_array(array: np.ndarray) -> dict:
    """A numpy array as JSON-able ``{"dtype", "shape", "data"}``.

    Byte-exact (raw buffer, base64) — the decoded array compares equal
    bit for bit, which is what keeps WAL replay deterministic.
    """
    contiguous = np.ascontiguousarray(array)
    return {
        "dtype": contiguous.dtype.str,
        "shape": list(contiguous.shape),
        "data": base64.b64encode(contiguous.tobytes()).decode("ascii"),
    }


def decode_array(payload: dict) -> np.ndarray:
    """Inverse of :func:`encode_array`; raises :class:`WalError` on junk."""
    try:
        raw = base64.b64decode(payload["data"], validate=True)
        array = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
        return array.reshape([int(n) for n in payload["shape"]]).copy()
    except (KeyError, TypeError, ValueError, binascii.Error) as exc:
        raise WalError(f"undecodable array payload: {exc}") from exc


def _encode_frame(payload: bytes) -> bytes:
    return HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _segment_name(first_lsn: int) -> str:
    return f"{first_lsn:0{_SEGMENT_DIGITS}d}.wal"


def _segment_first_lsn(path: Path) -> Optional[int]:
    stem = path.name[: -len(".wal")]
    if not (path.name.endswith(".wal") and stem.isdigit()):
        return None
    return int(stem)


def _list_segments(directory: Path) -> List[Tuple[int, Path]]:
    """``(first_lsn, path)`` for every segment, ascending."""
    if not directory.exists():
        return []
    out = []
    for path in directory.iterdir():
        first = _segment_first_lsn(path)
        if first is not None:
            out.append((first, path))
    return sorted(out)


@dataclass(frozen=True)
class _Frame:
    """One parsed frame: where it sits and what it carries."""

    offset: int
    end: int
    payload: bytes


class _BadFrame(Exception):
    """Internal: frame at ``offset`` is invalid; ``torn_shaped`` when the
    damage is consistent with an interrupted append (short frame, or a
    CRC failure flush against end-of-file)."""

    def __init__(self, offset: int, reason: str, torn_shaped: bool) -> None:
        super().__init__(reason)
        self.offset = offset
        self.reason = reason
        self.torn_shaped = torn_shaped


def _parse_frames(data: bytes) -> Tuple[List[_Frame], Optional[_BadFrame]]:
    """Split a segment's bytes into frames; stop at the first bad one."""
    frames: List[_Frame] = []
    offset = 0
    size = len(data)
    while offset < size:
        if size - offset < HEADER.size:
            return frames, _BadFrame(offset, "truncated header", True)
        length, crc = HEADER.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            return frames, _BadFrame(
                offset, f"implausible record length {length}", True
            )
        end = offset + HEADER.size + length
        if end > size:
            return frames, _BadFrame(offset, "truncated payload", True)
        payload = data[offset + HEADER.size : end]
        if zlib.crc32(payload) != crc:
            # A half-overwritten final frame is torn; a CRC failure with
            # more log after it is rot.
            return frames, _BadFrame(offset, "crc mismatch", end == size)
        frames.append(_Frame(offset=offset, end=end, payload=payload))
        offset = end
    return frames, None


def _decode_record(payload: bytes, where: str) -> WalRecord:
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WalCorruptionError(
            f"{where}: frame passes CRC but is not JSON: {exc}"
        ) from exc
    if not isinstance(doc, dict) or "lsn" not in doc or "op" not in doc:
        raise WalCorruptionError(f"{where}: record missing lsn/op")
    lsn = doc.pop("lsn")
    op = doc.pop("op")
    if not isinstance(lsn, int) or lsn < 1 or not isinstance(op, str):
        raise WalCorruptionError(f"{where}: malformed lsn/op pair")
    return WalRecord(lsn=lsn, op=op, data=doc)


def _fsync_directory(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class WriteAheadLog:
    """An append-only, CRC-framed, segmented operation log.

    Single-writer by contract (the gallery serializes mutations);
    readers (:class:`WalFollower`, replay) are safe against a
    concurrent appender because every append is one ``write()`` of a
    whole frame and tails are re-read until complete.
    """

    def __init__(
        self,
        directory: os.PathLike,
        sync: Optional[str] = None,
        segment_bytes: Optional[int] = None,
        keep_segments: Optional[int] = None,
    ) -> None:
        self._dir = Path(directory)
        if sync is None:
            sync = env_str(ENV_SYNC) or "always"
        if sync not in SYNC_POLICIES:
            raise ConfigurationError(
                f"{ENV_SYNC} must be one of {SYNC_POLICIES}, got {sync!r}"
            )
        if segment_bytes is None:
            segment_bytes = env_int(ENV_SEGMENT_BYTES) or DEFAULT_SEGMENT_BYTES
        if segment_bytes < 1:
            raise ConfigurationError(
                f"segment_bytes must be >= 1, got {segment_bytes}"
            )
        if keep_segments is None:
            keep = env_int(ENV_KEEP_SEGMENTS)
            keep_segments = DEFAULT_KEEP_SEGMENTS if keep is None else keep
        if keep_segments < 0:
            raise ConfigurationError(
                f"keep_segments must be >= 0, got {keep_segments}"
            )
        self.sync = sync
        self.segment_bytes = int(segment_bytes)
        self.keep_segments = int(keep_segments)
        self._handle = None
        self._active_path: Optional[Path] = None
        self._active_size = 0
        self._last_lsn = 0
        self._failed = False
        self._rotated_since_checkpoint = False
        # Lifetime counters for /metrics and the manifest rollup.
        self.counters: Dict[str, int] = {
            "appends": 0,
            "bytes": 0,
            "fsyncs": 0,
            "rotations": 0,
            "checkpoints": 0,
            "segments_removed": 0,
            "replayed": 0,
            "torn_truncated": 0,
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def directory(self) -> Path:
        return self._dir

    @property
    def last_lsn(self) -> int:
        """LSN of the most recent append (or replayed record)."""
        return self._last_lsn

    @property
    def rotated_since_checkpoint(self) -> bool:
        """Whether a segment sealed since the last checkpoint — the
        gallery's cue to flush derived state and compact."""
        return self._rotated_since_checkpoint

    def checkpoint_lsn(self) -> int:
        """Records at or below this LSN are durably applied downstream."""
        path = self._dir / _CHECKPOINT_NAME
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
            return int(doc["lsn"])
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            return 0

    def segments(self) -> List[Path]:
        """Segment paths, oldest first."""
        return [path for _, path in _list_segments(self._dir)]

    def stats(self) -> dict:
        """JSON-able footprint + counters for /stats and /metrics."""
        segments = self.segments()
        size = 0
        for path in segments:
            try:
                size += path.stat().st_size
            except OSError:  # pragma: no cover - segment raced away
                pass
        return {
            "directory": str(self._dir),
            "sync": self.sync,
            "last_lsn": self._last_lsn,
            "checkpoint_lsn": self.checkpoint_lsn(),
            "segments": len(segments),
            "size_bytes": size,
            **self.counters,
        }

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(self) -> List[WalRecord]:
        """Every record retained in the log, in LSN order.

        Truncates a torn tail of the final segment in place (the
        interrupted append was never acked); raises
        :class:`WalCorruptionError` for damage anywhere else.  Leaves
        the writer positioned after the last valid record.
        """
        records: List[WalRecord] = []
        segments = _list_segments(self._dir)
        for position, (first_lsn, path) in enumerate(segments):
            final = position == len(segments) - 1
            data = path.read_bytes()
            frames, bad = _parse_frames(data)
            if bad is not None:
                if not (final and bad.torn_shaped):
                    raise WalCorruptionError(
                        f"{path.name} @ {bad.offset}: {bad.reason} "
                        "(corrupt mid-log record; refusing to replay — "
                        "inspect or remove the damaged segments)"
                    )
                _log.warning(
                    "torn WAL tail truncated",
                    extra={"data": {
                        "segment": path.name,
                        "offset": bad.offset,
                        "reason": bad.reason,
                    }},
                )
                with open(path, "r+b") as handle:
                    handle.truncate(bad.offset)
                    handle.flush()
                    os.fsync(handle.fileno())
                self.counters["torn_truncated"] += 1
                get_recorder().count("wal.torn_truncated")
            for frame in frames:
                record = _decode_record(
                    frame.payload, f"{path.name} @ {frame.offset}"
                )
                if record.lsn != (records[-1].lsn + 1 if records else first_lsn):
                    raise WalCorruptionError(
                        f"{path.name} @ {frame.offset}: LSN {record.lsn} "
                        "breaks the append sequence"
                    )
                records.append(record)
        if records:
            self._last_lsn = records[-1].lsn
        else:
            # An empty (or fully torn) log continues after the newest
            # segment's declared start, never reusing burned LSNs.
            self._last_lsn = max(
                [first - 1 for first, _ in segments], default=0
            )
            checkpoint = self.checkpoint_lsn()
            self._last_lsn = max(self._last_lsn, checkpoint)
        self.counters["replayed"] += len(records)
        if records:
            get_recorder().count("wal.replayed", len(records))
        return records

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _open_active(self) -> None:
        segments = _list_segments(self._dir)
        if segments:
            first_lsn, path = segments[-1]
            self._active_path = path
            self._active_size = path.stat().st_size
        else:
            self._dir.mkdir(parents=True, exist_ok=True)
            self._active_path = self._dir / _segment_name(self._last_lsn + 1)
            self._active_size = 0
            _fsync_directory(self._dir)
        self._handle = open(self._active_path, "ab", buffering=0)

    def _rotate(self) -> None:
        if self._handle is not None:
            if self.sync in ("always", "rotate"):
                os.fsync(self._handle.fileno())
                self.counters["fsyncs"] += 1
            self._handle.close()
        self._active_path = self._dir / _segment_name(self._last_lsn + 1)
        self._active_size = 0
        self._handle = open(self._active_path, "ab", buffering=0)
        _fsync_directory(self._dir)
        self.counters["rotations"] += 1
        self._rotated_since_checkpoint = True
        get_recorder().count("wal.rotations")

    def append(self, op: str, data: dict) -> int:
        """Frame, write, and (per policy) fsync one record; returns its LSN.

        Raises :class:`WalError` if a previous append tore — the log is
        not trustworthy past a tear until replayed — or if the write
        itself fails; in both cases the caller must not ack.
        """
        if self._failed:
            raise WalError(
                "write-ahead log failed a previous append; "
                "reopen and replay before writing again"
            )
        if self._handle is None:
            self._open_active()
        elif self._active_size >= self.segment_bytes:
            self._rotate()
        lsn = self._last_lsn + 1
        payload = json.dumps(
            {"lsn": lsn, "op": op, **data}, sort_keys=True
        ).encode("utf-8")
        frame = _encode_frame(payload)
        offset = self._active_size
        key = f"wal-append-{lsn:08d}"
        try:
            self._handle.write(frame)
        except OSError as exc:
            self._failed = True
            raise WalError(f"WAL append failed: {exc}") from exc
        if faults.wal_torn_hook(self._active_path, offset, len(frame), key):
            self._failed = True
            self._handle.close()
            self._handle = None
            raise WalError(
                f"injected torn write at lsn {lsn}; append not durable"
            )
        faults.wal_corrupt_hook(self._active_path, offset, len(frame), key)
        if self.sync == "always":
            stall = faults.wal_stall_hook(f"wal-fsync-{lsn:08d}")
            if stall > 0:
                time.sleep(stall)
            os.fsync(self._handle.fileno())
            self.counters["fsyncs"] += 1
        self._active_size += len(frame)
        self._last_lsn = lsn
        self.counters["appends"] += 1
        self.counters["bytes"] += len(frame)
        recorder = get_recorder()
        if recorder.active:
            recorder.count("wal.appends")
            recorder.count("wal.bytes", len(frame))
        return lsn

    # ------------------------------------------------------------------
    # Checkpoint / compaction
    # ------------------------------------------------------------------
    def checkpoint(self, durable_lsn: int) -> int:
        """Record that ops ≤ ``durable_lsn`` are applied; compact.

        Sealed segments wholly below the checkpoint are removed, except
        the newest ``keep_segments`` of them (follower catch-up
        headroom).  Returns how many segments were removed.
        """
        durable_lsn = min(durable_lsn, self._last_lsn)
        path = self._dir / _CHECKPOINT_NAME
        self._dir.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"lsn": durable_lsn}, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        _fsync_directory(self._dir)
        self.counters["checkpoints"] += 1
        self._rotated_since_checkpoint = False
        get_recorder().count("wal.checkpoints")

        removed = 0
        segments = _list_segments(self._dir)
        # A segment's records end where the next segment starts; only
        # sealed segments (not the last) are candidates.
        removable = [
            path
            for (first, path), (next_first, _next) in zip(
                segments, segments[1:]
            )
            if next_first - 1 <= durable_lsn
        ]
        for path in removable[: max(0, len(removable) - self.keep_segments)]:
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - raced removal
                pass
        if removed:
            _fsync_directory(self._dir)
            self.counters["segments_removed"] += removed
            get_recorder().count("wal.segments_removed", removed)
        return removed

    def close(self) -> None:
        """Flush and close the active segment (idempotent)."""
        if self._handle is not None:
            if self.sync in ("always", "rotate") and not self._failed:
                try:
                    os.fsync(self._handle.fileno())
                    self.counters["fsyncs"] += 1
                except OSError:  # pragma: no cover - torn handle
                    pass
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class WalFollower:
    """Tail a log directory another process is appending to.

    Keeps a cursor (segment, byte offset, last LSN) and returns newly
    completed records from :meth:`poll`.  An invalid tail of the
    *newest* segment reads as "mid-append, try again"; the same bytes
    in a sealed segment are corruption.  A cursor pointing into a
    compacted-away segment raises :class:`WalError` — the follower
    fell past the log's retention and must re-bootstrap.
    """

    def __init__(self, directory: os.PathLike) -> None:
        self._dir = Path(directory)
        self._segment_first: Optional[int] = None
        self._offset = 0
        self._last_lsn = 0

    @property
    def directory(self) -> Path:
        return self._dir

    @property
    def last_lsn(self) -> int:
        """LSN of the newest record :meth:`poll` has returned."""
        return self._last_lsn

    def _segments(self) -> List[Tuple[int, Path]]:
        return _list_segments(self._dir)

    def poll(self) -> List[WalRecord]:
        """Every record completed since the last call, in LSN order."""
        records: List[WalRecord] = []
        segments = self._segments()
        if not segments:
            return records
        if self._segment_first is None:
            self._segment_first, _ = segments[0]
            self._offset = 0
        while True:
            index = next(
                (
                    i
                    for i, (first, _) in enumerate(segments)
                    if first == self._segment_first
                ),
                None,
            )
            if index is None:
                if self._last_lsn >= segments[0][0] - 1:
                    # Our segment sealed and was compacted after we
                    # finished it; continue from the next retained one.
                    nxt = next(
                        (
                            (first, path)
                            for first, path in segments
                            if first == self._last_lsn + 1
                        ),
                        None,
                    )
                    if nxt is None:
                        raise WalError(
                            "follower fell behind WAL retention "
                            f"(next lsn {self._last_lsn + 1} compacted away); "
                            "re-bootstrap from the gallery snapshot"
                        )
                    self._segment_first, _ = nxt
                    self._offset = 0
                    continue
                raise WalError(
                    "follower fell behind WAL retention; "
                    "re-bootstrap from the gallery snapshot"
                )
            first, path = segments[index]
            final = index == len(segments) - 1
            try:
                with open(path, "rb") as handle:
                    handle.seek(self._offset)
                    data = handle.read()
            except FileNotFoundError:
                segments = self._segments()
                continue
            base = self._offset
            frames, bad = _parse_frames(data)
            for frame in frames:
                record = _decode_record(
                    frame.payload, f"{path.name} @ {base + frame.offset}"
                )
                expected = self._last_lsn + 1 if self._last_lsn else record.lsn
                if record.lsn != expected:
                    raise WalCorruptionError(
                        f"{path.name}: LSN {record.lsn} breaks the tailed "
                        f"sequence (expected {expected})"
                    )
                records.append(record)
                self._last_lsn = record.lsn
            if frames:
                self._offset = base + frames[-1].end
            if bad is not None:
                if final and bad.torn_shaped:
                    # Mid-append (or a torn tail the primary will trim
                    # at restart); wait for the bytes to settle.
                    return records
                raise WalCorruptionError(
                    f"{path.name} @ {base + bad.offset}: {bad.reason} "
                    "(corrupt record while tailing)"
                )
            if final:
                return records
            # Sealed segment fully consumed: advance.
            self._segment_first = segments[index + 1][0]
            self._offset = 0

    def pending(self) -> int:
        """Complete records written but not yet returned by :meth:`poll`.

        The follower's ``lag_records``: 0 when fully caught up.  Counts
        frames (cheap CRC-skip scan) without decoding payloads.
        """
        count = 0
        segments = self._segments()
        started = self._segment_first is not None
        for index, (first, path) in enumerate(segments):
            if started and first < (self._segment_first or 0):
                continue
            offset = (
                self._offset
                if started and first == self._segment_first
                else 0
            )
            try:
                with open(path, "rb") as handle:
                    handle.seek(offset)
                    data = handle.read()
            except FileNotFoundError:
                continue
            frames, _bad = _parse_frames(data)
            count += len(frames)
        return count


__all__ = [
    "WriteAheadLog",
    "WalFollower",
    "WalRecord",
    "WalError",
    "WalCorruptionError",
    "encode_array",
    "decode_array",
    "ENV_SYNC",
    "ENV_SEGMENT_BYTES",
    "ENV_KEEP_SEGMENTS",
    "SYNC_POLICIES",
    "DEFAULT_SEGMENT_BYTES",
    "DEFAULT_KEEP_SEGMENTS",
    "MAX_RECORD_BYTES",
]
