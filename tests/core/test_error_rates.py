"""Error-rate matrix helpers."""

import numpy as np
import pytest

from repro.core.error_rates import (
    TABLE5_FMR,
    TABLE6_FMR,
    TABLE6_MAX_NFIQ,
    diagonal_dominance_violations,
    fnmr_interoperability_matrix,
    matrix_as_dict,
    mean_interoperability_penalty,
)


class TestOperatingPoints:
    def test_constants_match_paper(self):
        assert TABLE5_FMR == 1e-4  # "fixed FMR of 0.01%"
        assert TABLE6_FMR == 1e-3  # "fixed FMR of 0.1%"
        assert TABLE6_MAX_NFIQ == 2  # "NFIQ quality < 3"


class TestMatrixHelpers:
    def test_diagonal_dominance_violations(self):
        matrix = np.array(
            [
                [0.1, 0.2, 0.2, 0.2, 0.9],
                [0.2, 0.3, 0.25, 0.28, 0.9],  # D1 diag worst (paper anomaly)
                [0.2, 0.25, 0.1, 0.2, 0.9],
                [0.2, 0.2, 0.2, 0.1, 0.9],
                [0.9, 0.9, 0.9, 0.9, 0.05],
            ]
        )
        assert diagonal_dominance_violations(matrix) == ["D1"]

    def test_d4_column_excluded_from_dominance(self):
        matrix = np.full((5, 5), 0.2)
        matrix[0, 0] = 0.1
        matrix[0, 4] = 0.05  # excellent D4 cell must not flag D0
        assert "D0" not in diagonal_dominance_violations(matrix)

    def test_nan_diagonal_skipped(self):
        matrix = np.full((5, 5), 0.2)
        matrix[2, 2] = np.nan
        assert "D2" not in diagonal_dominance_violations(matrix)

    def test_mean_penalty_positive_when_offdiag_worse(self):
        matrix = np.full((5, 5), 0.3)
        np.fill_diagonal(matrix, 0.1)
        assert mean_interoperability_penalty(matrix) == pytest.approx(0.2)

    def test_mean_penalty_zero_when_flat(self):
        matrix = np.full((5, 5), 0.2)
        assert mean_interoperability_penalty(matrix) == pytest.approx(0.0)

    def test_matrix_as_dict_keys(self):
        matrix = np.arange(25, dtype=float).reshape(5, 5)
        cells = matrix_as_dict(matrix)
        assert cells[("D0", "D0")] == 0.0
        assert cells[("D4", "D4")] == 24.0
        assert len(cells) == 25


class TestOnStudy:
    def test_matrix_from_study(self, tiny_study):
        matrix = fnmr_interoperability_matrix(tiny_study, target_fmr=1e-2)
        assert matrix.shape == (5, 5)
        assert not np.all(np.isnan(matrix))

    def test_quality_filter_reduces_or_keeps(self, tiny_study):
        full = fnmr_interoperability_matrix(tiny_study, target_fmr=1e-2)
        filtered = fnmr_interoperability_matrix(
            tiny_study, target_fmr=1e-2, max_nfiq=3
        )
        both = ~np.isnan(full) & ~np.isnan(filtered)
        # Quality gating should not systematically *raise* FNMR.
        assert filtered[both].mean() <= full[both].mean() + 0.05
