"""Exception hierarchy for the reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from data-level problems.

For fault tolerance the hierarchy also splits failures along a second
axis — *retryability*: :class:`TransientError` marks failures worth
retrying (a wedged worker, a torn cache write, resource exhaustion that
may clear), :class:`PermanentError` marks failures that will recur on
every attempt (bad input, a bug).  :func:`classify_failure` maps any
exception onto that axis for the supervised execution core.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A study or component was configured with invalid parameters."""


class SynthesisError(ReproError):
    """Synthetic fingerprint generation failed (e.g. degenerate pattern)."""


class AcquisitionError(ReproError):
    """A sensor model could not produce an impression."""


class MatcherError(ReproError):
    """The matcher was given templates it cannot compare."""


class TemplateFormatError(ReproError):
    """An INCITS 378 buffer (or other codec input) is malformed."""


class CalibrationError(ReproError):
    """A calibration model could not be fit or applied."""


class CacheError(ReproError):
    """The on-disk score cache is corrupt or unwritable."""


class TransientError(ReproError):
    """A failure that is expected to clear on retry.

    Raise this from task code (or wrap an underlying exception with it)
    when the failure is environmental — a hung device, a momentarily
    unavailable resource — rather than a property of the input.  The
    supervised executor retries transient failures under its
    :class:`~repro.runtime.supervisor.RetryPolicy`.
    """


class PermanentError(ReproError):
    """A failure that will recur on every attempt; never retried.

    The supervised executor either aborts the run (fail-fast, the
    default) or records a skip when it sees one.
    """


#: Exception types the supervisor treats as transient even though they
#: do not derive from :class:`TransientError`: wedged-I/O and exhausted-
#: resource conditions that routinely clear on a fresh attempt.
TRANSIENT_FAILURE_TYPES = (TransientError, TimeoutError, ConnectionError, MemoryError)


def classify_failure(exc: BaseException) -> str:
    """Map an exception to ``"transient"`` or ``"permanent"``.

    :class:`PermanentError` wins over everything (even when a transient
    type appears in its ``__cause__`` chain); the types in
    :data:`TRANSIENT_FAILURE_TYPES` are transient; any other exception is
    permanent — an unknown failure is assumed to be a bug, because
    retrying a bug burns the retry budget without ever succeeding.
    """
    if isinstance(exc, PermanentError):
        return "permanent"
    if isinstance(exc, TRANSIENT_FAILURE_TYPES):
        return "transient"
    return "permanent"
