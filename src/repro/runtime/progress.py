"""Lightweight progress reporting for long score-generation runs.

The harness processes hundreds of thousands of match attempts; a user
running ``examples/full_study.py`` should see that something is
happening without the library depending on an external progress-bar
package.  :class:`ProgressReporter` throttles writes so tight loops pay
almost nothing for instrumentation.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional, TextIO


def format_eta(seconds: float) -> str:
    """Compact rendering of a remaining-time estimate (``4m12s`` style)."""
    whole = int(round(max(0.0, seconds)))
    if whole < 60:
        return f"{whole}s"
    minutes, secs = divmod(whole, 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressReporter:
    """Throttled textual progress reporter.

    Parameters
    ----------
    total:
        Expected number of work units, or ``None`` when unknown.
    label:
        Short description printed with every update.
    stream:
        Output stream; defaults to ``sys.stderr``.  Pass ``None`` to
        silence the reporter entirely (the mode used by the test suite).
    min_interval:
        Minimum seconds between writes.
    clock:
        Injectable time source, for deterministic tests.
    """

    def __init__(
        self,
        total: Optional[int] = None,
        label: str = "progress",
        stream: Optional[TextIO] = ...,  # type: ignore[assignment]
        min_interval: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.total = total
        self.label = label
        self._stream: Optional[TextIO] = sys.stderr if stream is ... else stream
        self._min_interval = min_interval
        self._clock = clock
        self._count = 0
        self._last_emit = -float("inf")
        self._started = clock()
        self._emissions = 0

    @property
    def count(self) -> int:
        """Work units reported so far."""
        return self._count

    @property
    def emissions(self) -> int:
        """Number of lines actually written (throttling makes this small)."""
        return self._emissions

    def update(self, n: int = 1) -> None:
        """Record ``n`` completed units, emitting output if due."""
        if n < 0:
            raise ValueError("progress cannot go backwards")
        self._count += n
        now = self._clock()
        if now - self._last_emit >= self._min_interval:
            self._emit(now)

    def finish(self) -> None:
        """Force a final emission with the complete count."""
        self._emit(self._clock(), final=True)

    def _emit(self, now: float, final: bool = False) -> None:
        self._last_emit = now
        self._emissions += 1
        if self._stream is None:
            return
        elapsed = max(now - self._started, 1e-9)
        rate = self._count / elapsed
        if self.total:
            pct = 100.0 * self._count / self.total
            msg = (
                f"[{self.label}] {self._count}/{self.total} "
                f"({pct:5.1f}%) {rate:,.0f}/s"
            )
            remaining = self.total - self._count
            if not final and remaining > 0 and rate > 0:
                msg += f" eta {format_eta(remaining / rate)}"
        else:
            msg = f"[{self.label}] {self._count} done, {rate:,.0f}/s"
        end = "\n" if final else "\r"
        try:
            self._stream.write(msg + end)
            self._stream.flush()
        except (OSError, ValueError):
            # A closed or broken stream must never kill the experiment.
            self._stream = None


class NullProgress(ProgressReporter):
    """A reporter that counts but never writes — default inside the library."""

    def __init__(self, total: Optional[int] = None, label: str = "progress") -> None:
        super().__init__(total=total, label=label, stream=None, min_interval=0.0)


__all__ = ["ProgressReporter", "NullProgress", "format_eta"]
