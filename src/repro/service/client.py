"""Blocking HTTP client for the serving layer.

A thin :mod:`http.client` wrapper used by the tests, the CI smoke
check, and the load benchmark — anything that wants to talk to a
:class:`~repro.service.server.VerificationServer` without pulling in an
async stack.  Templates are serialized to base64 ANSI/INCITS 378 on the
way out, mirroring :func:`repro.service.server.decode_template_field`
on the way in.

Error responses come back as :class:`ServiceClientError` carrying the
HTTP status and the server's error payload, so callers can assert on
exact status codes (the smoke test does) or branch on
``retryable`` (503/504 — the transient statuses — line up with the
study's :class:`~repro.runtime.errors.TransientError` taxonomy).

Every request carries a generated ``X-Request-ID``, and the id the
server echoes back is kept on :attr:`ServiceClient.last_request_id`
(response headers on :attr:`~ServiceClient.last_headers`), so a caller
can tie its own records to the server's reqlog and traces.
"""

from __future__ import annotations

import base64
import http.client
import json
import socket
import time
from typing import Dict, Optional

from ..io.incits378 import encode as encode_378
from ..matcher.types import Template
from ..runtime.errors import ReproError, TransientError
from ..runtime.telemetry import new_request_id

#: HTTP statuses that correspond to transient (retry-worthy) failures.
RETRYABLE_STATUSES = frozenset({503, 504})


class ServiceClientError(ReproError):
    """The server answered with an error status."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(
            f"service returned HTTP {status}: {payload.get('error', payload)}"
        )
        self.status = status
        self.payload = payload

    @property
    def retryable(self) -> bool:
        """Whether the failure is transient (overload / deadline)."""
        return self.status in RETRYABLE_STATUSES


def encode_template(template: Template) -> str:
    """Base64 INCITS 378 wire form of a template."""
    return base64.b64encode(encode_378(template)).decode("ascii")


class ServiceClient:
    """Blocking client for one server address.

    One persistent keep-alive connection per client instance; a client
    is therefore *not* thread-safe — the load generator gives each
    worker thread its own.
    """

    def __init__(self, host: str, port: int, timeout_s: float = 30.0) -> None:
        self._host = host
        self._port = port
        self._timeout_s = timeout_s
        self._connection: Optional[http.client.HTTPConnection] = None
        #: Request id echoed by the server on the last response (the id
        #: this client sent, unless a proxy rewrote it).
        self.last_request_id: Optional[str] = None
        #: Lower-cased headers of the last response (``retry-after``
        #: shows up here on a 503).
        self.last_headers: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout_s
            )
        return self._connection

    def close(self) -> None:
        """Drop the persistent connection (idempotent)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _exchange(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> tuple:
        """One round trip; returns ``(status, raw_body)`` after capturing
        the echoed request id and response headers."""
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        request_id = new_request_id()
        headers["X-Request-ID"] = request_id
        try:
            connection = self._connect()
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        except (ConnectionError, socket.timeout, http.client.HTTPException, OSError) as exc:
            self.close()
            raise TransientError(
                f"service at {self._host}:{self._port} unreachable: {exc}"
            ) from exc
        self.last_headers = {
            name.lower(): value for name, value in response.getheaders()
        }
        self.last_request_id = self.last_headers.get("x-request-id", request_id)
        return response.status, raw

    def _request(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        status, raw = self._exchange(method, path, payload)
        try:
            data = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            data = {"error": raw.decode("utf-8", "replace")}
        if status >= 400:
            raise ServiceClientError(status, data)
        return data

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """Liveness probe."""
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        """The server's live counters and distributions."""
        return self._request("GET", "/stats")

    def metrics(self) -> str:
        """The raw Prometheus text exposition from ``GET /metrics``."""
        status, raw = self._exchange("GET", "/metrics")
        text = raw.decode("utf-8", "replace")
        if status >= 400:
            raise ServiceClientError(status, {"error": text})
        return text

    def enroll(
        self, identity: str, template: Template, device: str = "default"
    ) -> dict:
        """Enroll one template (may raise 409 via ServiceClientError)."""
        return self._request(
            "POST",
            "/enroll",
            {
                "identity": identity,
                "device": device,
                "template": encode_template(template),
            },
        )

    def verify(
        self,
        identity: str,
        template: Template,
        device: str = "default",
        threshold: Optional[float] = None,
        timeout_s: Optional[float] = None,
    ) -> dict:
        """1:1 verification of a claimed identity."""
        payload: dict = {
            "identity": identity,
            "device": device,
            "template": encode_template(template),
        }
        if threshold is not None:
            payload["threshold"] = threshold
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        return self._request("POST", "/verify", payload)

    def identify(
        self,
        template: Template,
        device: Optional[str] = "default",
        max_candidates: int = 10,
        threshold: Optional[float] = None,
        timeout_s: Optional[float] = None,
    ) -> dict:
        """1:N search; ``device=None`` searches every shard."""
        payload: dict = {
            "template": encode_template(template),
            "max_candidates": max_candidates,
        }
        if device is not None:
            payload["device"] = device
        if threshold is not None:
            payload["threshold"] = threshold
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        return self._request("POST", "/identify", payload)

    def delete(self, identity: str, device: str = "default") -> dict:
        """Remove one enrollment."""
        return self._request("DELETE", f"/enroll/{device}/{identity}")

    def wait_until_healthy(self, timeout_s: float = 10.0) -> dict:
        """Poll ``/healthz`` until the server answers (startup helper)."""
        deadline = time.monotonic() + timeout_s
        last_error: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except (TransientError, ServiceClientError) as exc:
                last_error = exc
                time.sleep(0.05)
        raise TransientError(
            f"service at {self._host}:{self._port} did not become healthy "
            f"within {timeout_s:.1f}s: {last_error}"
        )


__all__ = [
    "ServiceClient",
    "ServiceClientError",
    "encode_template",
    "RETRYABLE_STATUSES",
]
