"""Fingerprint pattern classes and singularity layout sampling.

Real fingerprints fall into a handful of Galton–Henry pattern classes
with well-known population frequencies (loops ~60–65 %, whorls ~30 %,
arches ~5 %).  The pattern class determines the number and rough
placement of cores and deltas, which in turn shapes the orientation
field of :mod:`repro.synthesis.orientation`.

Placement values are jittered per finger so no two synthetic fingers
share an orientation field.
"""

from __future__ import annotations

import enum
from typing import Dict, List

import numpy as np

from .orientation import OrientationField, Singularity


class PatternClass(enum.Enum):
    """Galton–Henry fingerprint pattern classes."""

    PLAIN_ARCH = "plain_arch"
    TENTED_ARCH = "tented_arch"
    LEFT_LOOP = "left_loop"
    RIGHT_LOOP = "right_loop"
    WHORL = "whorl"


#: Approximate natural frequencies of the pattern classes
#: (Maltoni et al., Handbook of Fingerprint Recognition, ch. 1).
PATTERN_FREQUENCIES: Dict[PatternClass, float] = {
    PatternClass.PLAIN_ARCH: 0.037,
    PatternClass.TENTED_ARCH: 0.029,
    PatternClass.LEFT_LOOP: 0.338,
    PatternClass.RIGHT_LOOP: 0.317,
    PatternClass.WHORL: 0.279,
}


def sample_pattern_class(rng: np.random.Generator) -> PatternClass:
    """Draw a pattern class from the natural population frequencies."""
    classes = list(PATTERN_FREQUENCIES)
    probs = np.array([PATTERN_FREQUENCIES[c] for c in classes])
    probs = probs / probs.sum()
    index = int(rng.choice(len(classes), p=probs))
    return classes[index]


def _jitter(rng: np.random.Generator, scale: float) -> float:
    return float(rng.normal(0.0, scale))


def build_orientation_field(
    pattern: PatternClass, rng: np.random.Generator
) -> OrientationField:
    """Construct a jittered orientation field for ``pattern``.

    Layouts (finger-space mm; y grows toward the fingertip):

    * plain arch — no singularities, smooth arch bend;
    * tented arch — core and delta nearly vertically aligned, close;
    * left/right loop — one core above one delta, delta offset to the
      loop's open side;
    * whorl — two cores flanked by two deltas.
    """
    singularities: List[Singularity] = []
    base = _jitter(rng, 0.06)
    bend = 0.0

    if pattern is PatternClass.PLAIN_ARCH:
        bend = 0.55 + _jitter(rng, 0.08)
    elif pattern is PatternClass.TENTED_ARCH:
        cx = _jitter(rng, 0.8)
        cy = 0.5 + _jitter(rng, 0.8)
        singularities.append(Singularity(cx, cy, "core"))
        singularities.append(Singularity(cx + _jitter(rng, 0.5), cy - 4.5 + _jitter(rng, 0.8), "delta"))
    elif pattern in (PatternClass.LEFT_LOOP, PatternClass.RIGHT_LOOP):
        side = -1.0 if pattern is PatternClass.LEFT_LOOP else 1.0
        core_x = side * (0.8 + abs(_jitter(rng, 0.6)))
        core_y = 1.5 + _jitter(rng, 1.0)
        delta_x = -side * (4.0 + abs(_jitter(rng, 1.0)))
        delta_y = core_y - 6.0 + _jitter(rng, 1.0)
        singularities.append(Singularity(core_x, core_y, "core"))
        singularities.append(Singularity(delta_x, delta_y, "delta"))
    elif pattern is PatternClass.WHORL:
        spread = 1.6 + abs(_jitter(rng, 0.5))
        cy = 1.0 + _jitter(rng, 0.8)
        singularities.append(Singularity(-spread + _jitter(rng, 0.3), cy + _jitter(rng, 0.5), "core"))
        singularities.append(Singularity(spread + _jitter(rng, 0.3), cy + _jitter(rng, 0.5), "core"))
        singularities.append(Singularity(-5.2 + _jitter(rng, 0.7), cy - 6.5 + _jitter(rng, 0.8), "delta"))
        singularities.append(Singularity(5.2 + _jitter(rng, 0.7), cy - 6.5 + _jitter(rng, 0.8), "delta"))
    else:  # pragma: no cover - enum is exhaustive
        raise ValueError(f"unhandled pattern class {pattern!r}")

    return OrientationField(
        singularities=tuple(singularities), base_angle=base, arch_bend=bend
    )


__all__ = [
    "PatternClass",
    "PATTERN_FREQUENCIES",
    "sample_pattern_class",
    "build_orientation_field",
]
