"""End-to-end HTTP round trips against a live VerificationServer.

The acceptance scenario for the serving layer, over a real socket:
enroll → genuine accept / impostor reject → identify rank-1 → restart →
persistence.  ``port=0`` keeps every server on its own ephemeral port.
"""

import base64
import concurrent.futures
import json
import socket

import pytest

from repro.service import (
    BatchingConfig,
    EXPOSITION_CONTENT_TYPE,
    GalleryIndex,
    ServerStartupError,
    ServiceClient,
    ServiceClientError,
    ServiceRunner,
    VerificationServer,
    encode_template,
    parse_exposition,
    sample_value,
)

FINGER = "right_index"
SUBJECTS = (0, 1, 2)


def _server(gallery, matcher, **kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("batching", BatchingConfig(max_wait_ms=5.0))
    return VerificationServer(gallery, matcher=matcher, **kwargs)


@pytest.fixture()
def live(tmp_path, tiny_collection, matcher):
    """A running server enrolled with three subjects, plus its client."""
    gallery = GalleryIndex(tmp_path / "gallery")
    with ServiceRunner(_server(gallery, matcher)) as (host, port):
        with ServiceClient(host, port) as client:
            for sid in SUBJECTS:
                client.enroll(
                    f"subject-{sid}",
                    tiny_collection.get(sid, FINGER, "D0", 0).template,
                    device="D0",
                )
            yield client


class TestRoundTrip:
    def test_full_lifecycle_with_restart(self, tmp_path, tiny_collection, matcher):
        root = tmp_path / "gallery"

        with ServiceRunner(_server(GalleryIndex(root), matcher)) as (host, port):
            with ServiceClient(host, port) as client:
                assert client.wait_until_healthy()["status"] == "ok"
                for sid in SUBJECTS:
                    reply = client.enroll(
                        f"subject-{sid}",
                        tiny_collection.get(sid, FINGER, "D0", 0).template,
                        device="D0",
                    )
                    assert 1 <= reply["nfiq_level"] <= 4

                genuine = client.verify(
                    "subject-0",
                    tiny_collection.get(0, FINGER, "D0", 1).template,
                    device="D0",
                )
                assert genuine["decision"] == "accept"
                assert genuine["score"] >= genuine["threshold"]

                impostor = client.verify(
                    "subject-0",
                    tiny_collection.get(1, FINGER, "D0", 1).template,
                    device="D0",
                )
                assert impostor["decision"] == "reject"

                identified = client.identify(
                    tiny_collection.get(1, FINGER, "D0", 1).template,
                    device="D0",
                )
                assert identified["search"]["gallery_size"] == len(SUBJECTS)
                assert identified["best"]["identity"] == "subject-1"
                assert identified["best"]["decision"] == "accept"
                assert identified["candidates"][0]["identity"] == "subject-1"

        # A fresh server over the same gallery directory remembers.
        with ServiceRunner(_server(GalleryIndex(root), matcher)) as (host, port):
            with ServiceClient(host, port) as client:
                assert client.healthz()["enrolled"] == len(SUBJECTS)
                survived = client.verify(
                    "subject-2",
                    tiny_collection.get(2, FINGER, "D0", 1).template,
                    device="D0",
                )
                assert survived["decision"] == "accept"

    def test_cross_device_verification_still_works(self, live, tiny_collection):
        # The interoperable case the paper studies: probe from another
        # optical device against the D0 enrollment.
        reply = live.verify(
            "subject-0",
            tiny_collection.get(0, FINGER, "D1", 1).template,
            device="D0",
        )
        assert reply["decision"] == "accept"

    def test_delete_then_verify_404s(self, live, tiny_collection):
        live.delete("subject-2", device="D0")
        with pytest.raises(ServiceClientError) as excinfo:
            live.verify(
                "subject-2",
                tiny_collection.get(2, FINGER, "D0", 1).template,
                device="D0",
            )
        assert excinfo.value.status == 404
        assert not excinfo.value.retryable


class TestStatusCodes:
    def test_unknown_identity_404(self, live, tiny_collection):
        with pytest.raises(ServiceClientError) as excinfo:
            live.verify(
                "ghost",
                tiny_collection.get(0, FINGER, "D0", 1).template,
                device="D0",
            )
        assert excinfo.value.status == 404
        assert excinfo.value.kind == "UnknownIdentityError"
        assert excinfo.value.code == "unknown_identity"

    def test_malformed_template_400(self, live):
        with pytest.raises(ServiceClientError) as excinfo:
            live._request(
                "POST",
                "/verify",
                {"identity": "subject-0", "device": "D0", "template": "!!!"},
            )
        assert excinfo.value.status == 400

    def test_truncated_template_400(self, live):
        garbage = base64.b64encode(b"FMR\x00 not a record").decode("ascii")
        with pytest.raises(ServiceClientError) as excinfo:
            live._request(
                "POST",
                "/verify",
                {"identity": "subject-0", "device": "D0", "template": garbage},
            )
        assert excinfo.value.status == 400

    def test_missing_identity_400(self, live, tiny_collection):
        template = tiny_collection.get(0, FINGER, "D0", 1).template
        with pytest.raises(ServiceClientError) as excinfo:
            live._request("POST", "/verify", {"template": encode_template(template)})
        assert excinfo.value.status == 400

    def test_bad_threshold_type_400(self, live, tiny_collection):
        template = tiny_collection.get(0, FINGER, "D0", 1).template
        with pytest.raises(ServiceClientError) as excinfo:
            live._request(
                "POST",
                "/verify",
                {
                    "identity": "subject-0",
                    "device": "D0",
                    "template": encode_template(template),
                    "threshold": True,
                },
            )
        assert excinfo.value.status == 400

    def test_wrong_method_405(self, live):
        with pytest.raises(ServiceClientError) as excinfo:
            live._request("GET", "/verify")
        assert excinfo.value.status == 405

    def test_unknown_route_404(self, live):
        with pytest.raises(ServiceClientError) as excinfo:
            live._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_port_in_use_raises_startup_error(self, tmp_path, matcher):
        gallery = GalleryIndex(tmp_path / "gallery")
        with ServiceRunner(_server(gallery, matcher)) as (host, port):
            second = ServiceRunner(_server(gallery, matcher, port=port))
            with pytest.raises(ServerStartupError):
                second.start()

    def test_malformed_request_line_gets_a_400_response(self, live):
        host, port = live._host, live._port
        with socket.create_connection((host, port), timeout=5) as raw:
            raw.sendall(b"NONSENSE\r\n\r\n")
            reply = raw.recv(4096).decode("latin-1")
        assert reply.startswith("HTTP/1.1 400 ")
        assert "X-Request-ID:" in reply


class TestOverload:
    def test_deterministic_503_with_retry_after(
        self, tmp_path, tiny_collection, matcher
    ):
        gallery = GalleryIndex(tmp_path / "gallery")
        server = _server(
            gallery, matcher,
            batching=BatchingConfig(queue_depth=1, max_wait_ms=0.0),
        )
        with ServiceRunner(server) as (host, port):
            with ServiceClient(host, port) as client:
                for sid in SUBJECTS:
                    client.enroll(
                        f"subject-{sid}",
                        tiny_collection.get(sid, FINGER, "D0", 0).template,
                        device="D0",
                    )
                # 3 candidates -> 3 pair jobs > queue_depth=1: refused.
                with pytest.raises(ServiceClientError) as excinfo:
                    client.identify(
                        tiny_collection.get(0, FINGER, "D0", 1).template,
                        device="D0",
                    )
                assert excinfo.value.status == 503
                assert excinfo.value.retryable
                assert client.last_headers.get("retry-after") == "1"
                assert client.last_headers.get("x-request-id")
                assert client.stats()["overloads"] >= 1


class TestMetricsEndpoint:
    def test_scrape_parses_strictly(self, live, tiny_collection):
        live.verify(
            "subject-0",
            tiny_collection.get(0, FINGER, "D0", 1).template,
            device="D0",
        )
        text = live.metrics()
        assert live.last_headers["content-type"] == EXPOSITION_CONTENT_TYPE
        families = parse_exposition(text)
        assert sample_value(
            families, "repro_requests_total", {"endpoint": "verify"}
        ) == 1
        assert sample_value(
            families, "repro_requests_total", {"endpoint": "enroll"}
        ) == len(SUBJECTS)
        assert sample_value(
            families, "repro_gallery_enrolled", {"device": "D0"}
        ) == len(SUBJECTS)
        assert sample_value(families, "repro_batches_total") >= 1

    def test_scraping_metrics_does_not_pollute_latency(self, live):
        for _ in range(5):
            live.metrics()
            live.healthz()
            live.stats()
        stats = live.stats()
        # Counted...
        assert stats["requests"]["metrics"] == 5
        # ...but never timed: the windows only hold real traffic.
        assert "metrics" not in stats["latency"]
        assert "healthz" not in stats["latency"]
        assert "stats" not in stats["latency"]

    def test_metrics_is_get_only(self, live):
        with pytest.raises(ServiceClientError) as excinfo:
            live._request("POST", "/metrics")
        assert excinfo.value.status == 405


class TestQualityGate:
    def test_low_quality_enrollment_409(self, live):
        from tests.service.test_gallery import _low_quality_template

        with pytest.raises(ServiceClientError) as excinfo:
            live.enroll("mushy", _low_quality_template(), device="D0")
        assert excinfo.value.status == 409
        assert excinfo.value.kind == "EnrollmentRejected"
        assert excinfo.value.code == "quality_rejected"
        stats = live.stats()
        assert stats["enroll_rejected"] == 1


class TestStatsEndpoint:
    def test_stats_payload_shape(self, live, tiny_collection):
        live.verify(
            "subject-0",
            tiny_collection.get(0, FINGER, "D0", 1).template,
            device="D0",
        )
        stats = live.stats()
        assert stats["requests"]["enroll"] == len(SUBJECTS)
        assert stats["requests"]["verify"] == 1
        assert stats["decisions"]["accepted"] == 1
        assert stats["gallery"]["enrolled"] == len(SUBJECTS)
        assert stats["batching"]["config"]["enabled"] is True
        assert stats["batching"]["jobs"] >= 1
        assert stats["threshold"] == 7.5
        assert "verify" in stats["latency"]
        assert json.dumps(stats)  # the payload must stay JSON-able

    def test_identify_fans_out_into_one_batch(self, live, tiny_collection):
        live.identify(
            tiny_collection.get(0, FINGER, "D0", 1).template, device="D0"
        )
        stats = live.stats()
        # One identify = one job per enrolled candidate, coalesced.
        assert stats["batching"]["max_size"] >= len(SUBJECTS)


class TestConcurrency:
    def test_concurrent_clients_coalesce_batches(
        self, tmp_path, tiny_collection, matcher
    ):
        gallery = GalleryIndex(tmp_path / "gallery")
        server = _server(
            gallery, matcher, batching=BatchingConfig(max_wait_ms=20.0)
        )
        with ServiceRunner(server) as (host, port):
            with ServiceClient(host, port) as setup:
                for sid in SUBJECTS:
                    setup.enroll(
                        f"subject-{sid}",
                        tiny_collection.get(sid, FINGER, "D0", 0).template,
                        device="D0",
                    )

            def one_verify(sid):
                with ServiceClient(host, port) as client:
                    return client.verify(
                        f"subject-{sid % len(SUBJECTS)}",
                        tiny_collection.get(
                            sid % len(SUBJECTS), FINGER, "D0", 1
                        ).template,
                        device="D0",
                    )

            with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
                replies = list(pool.map(one_verify, range(16)))
            assert all(r["decision"] == "accept" for r in replies)

            with ServiceClient(host, port) as client:
                stats = client.stats()
        assert stats["requests"]["verify"] == 16
        # Concurrent single-pair requests must have shared batches.
        assert stats["batching"]["max_size"] >= 2
        assert stats["batching"]["batches"] < 16 + len(SUBJECTS)


class TestVersionedApi:
    """Satellite (a): the /v1 surface, deprecation headers, envelopes."""

    def test_client_targets_v1_by_default(self, live):
        assert live.api_base == "/v1"
        assert live.healthz()["status"] == "ok"
        assert "deprecation" not in live.last_headers

    def test_legacy_paths_answer_with_deprecation_header(self, live):
        legacy = ServiceClient(live._host, live._port, api_base="")
        with legacy:
            assert legacy.healthz()["status"] == "ok"
            assert legacy.last_headers.get("deprecation") == "true"
            legacy.stats()
            assert legacy.last_headers.get("deprecation") == "true"

    def test_v1_and_legacy_hit_the_same_router(self, live, tiny_collection):
        template = tiny_collection.get(0, FINGER, "D0", 1).template
        v1 = live.verify("subject-0", template, device="D0")
        legacy = ServiceClient(live._host, live._port, api_base="")
        with legacy:
            old = legacy.verify("subject-0", template, device="D0")
        assert v1["score"] == old["score"]
        assert v1["decision"] == old["decision"]

    def test_unknown_route_is_not_marked_deprecated(self, live):
        with pytest.raises(ServiceClientError):
            live._request("GET", "/nope")
        assert "deprecation" not in live.last_headers

    def test_bare_v1_404s_without_deprecation(self, live):
        # "/v1" normalizes to "/", which is not a route — but it is
        # versioned, so the error must not claim deprecation.
        with pytest.raises(ServiceClientError) as excinfo:
            live._request("GET", "/v1")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "not_found"
        assert "deprecation" not in live.last_headers


class TestErrorEnvelope:
    """Satellite (a): every failure is {"error": {code, message, request_id}}."""

    @staticmethod
    def _assert_envelope(exc, status, code):
        assert exc.status == status
        envelope = exc.payload["error"]
        assert envelope["code"] == code == exc.code
        assert isinstance(envelope["message"], str) and envelope["message"]
        assert envelope["request_id"] == exc.request_id
        assert exc.request_id  # always stamped

    def test_404_unknown_route(self, live):
        with pytest.raises(ServiceClientError) as excinfo:
            live._request("GET", "/v1/nope")
        self._assert_envelope(excinfo.value, 404, "not_found")

    def test_405_wrong_method(self, live):
        with pytest.raises(ServiceClientError) as excinfo:
            live._request("GET", "/v1/verify")
        self._assert_envelope(excinfo.value, 405, "method_not_allowed")

    def test_400_unparsable_json(self, live):
        connection = live._connect()
        connection.request(
            "POST", "/v1/verify", body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        payload = json.loads(response.read())
        assert response.status == 400
        envelope = payload["error"]
        assert envelope["code"] == "bad_request"
        assert envelope["request_id"]

    def test_400_invalid_template(self, live):
        with pytest.raises(ServiceClientError) as excinfo:
            live._request(
                "POST",
                "/v1/verify",
                {"identity": "subject-0", "device": "D0", "template": "!!!"},
            )
        self._assert_envelope(excinfo.value, 400, "invalid_template")
        assert excinfo.value.kind == "TemplateFormatError"

    def test_413_oversized_body(self, live):
        connection = live._connect()
        connection.request(
            "POST", "/v1/verify", body=b"x" * ((1 << 20) + 1),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        payload = json.loads(response.read())
        assert response.status == 413
        assert payload["error"]["code"] == "payload_too_large"

    def test_503_overload_envelope_is_retryable(
        self, tmp_path, tiny_collection, matcher
    ):
        gallery = GalleryIndex(tmp_path / "gallery")
        server = _server(
            gallery, matcher,
            batching=BatchingConfig(queue_depth=1, max_wait_ms=0.0),
        )
        with ServiceRunner(server) as (host, port):
            with ServiceClient(host, port) as client:
                for sid in SUBJECTS:
                    client.enroll(
                        f"subject-{sid}",
                        tiny_collection.get(sid, FINGER, "D0", 0).template,
                        device="D0",
                    )
                with pytest.raises(ServiceClientError) as excinfo:
                    client.identify(
                        tiny_collection.get(0, FINGER, "D0", 1).template,
                        device="D0",
                    )
        self._assert_envelope(excinfo.value, 503, "overloaded")
        assert excinfo.value.retryable

    def test_legacy_errors_carry_the_same_envelope(self, live):
        legacy = ServiceClient(live._host, live._port, api_base="")
        with legacy:
            with pytest.raises(ServiceClientError) as excinfo:
                legacy._request("GET", "/verify")
        self._assert_envelope(excinfo.value, 405, "method_not_allowed")
        assert legacy.last_headers.get("deprecation") == "true"


class TestTwoStageIdentify:
    """Tentpole at the HTTP layer: modes, search block, candidate schema."""

    def test_exact_mode_response_schema(self, live, tiny_collection):
        reply = live.identify(
            tiny_collection.get(1, FINGER, "D0", 1).template, device="D0"
        )
        search = reply["search"]
        assert search["mode"] == "exact"
        assert search["gallery_size"] == len(SUBJECTS)
        assert search["candidates_scored"] == len(SUBJECTS)
        assert search["candidate_k"] is None
        assert search["prefilter_seconds"] == 0.0
        top = reply["candidates"][0]
        assert top["identity"] == "subject-1"
        assert top["device"] == "D0"
        assert top["stage"] == "exhaustive"
        assert top["prefilter_rank"] is None
        assert isinstance(top["score"], float)

    def test_two_stage_mode_response_schema(self, live, tiny_collection):
        reply = live.identify(
            tiny_collection.get(1, FINGER, "D0", 1).template,
            device="D0",
            mode="two_stage",
            candidate_k=2,
        )
        search = reply["search"]
        assert search["mode"] == "two_stage"
        assert search["gallery_size"] == len(SUBJECTS)
        assert search["candidates_scored"] == 2
        assert search["candidate_k"] == 2
        assert search["prefilter_seconds"] > 0.0
        for candidate in reply["candidates"]:
            assert candidate["stage"] == "rescored"
            assert 1 <= candidate["prefilter_rank"] <= 2

    def test_two_stage_agrees_with_exact_top1(self, live, tiny_collection):
        for sid in SUBJECTS:
            probe = tiny_collection.get(sid, FINGER, "D0", 1).template
            exact = live.identify(probe, device="D0", mode="exact")
            fast = live.identify(probe, device="D0", mode="two_stage")
            assert (
                exact["candidates"][0]["identity"]
                == fast["candidates"][0]["identity"]
                == f"subject-{sid}"
            )
            assert exact["candidates"][0]["score"] == pytest.approx(
                fast["candidates"][0]["score"]
            )

    def test_invalid_mode_400(self, live, tiny_collection):
        with pytest.raises(ServiceClientError) as excinfo:
            live.identify(
                tiny_collection.get(0, FINGER, "D0", 1).template,
                device="D0",
                mode="bogus",
            )
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid_request"

    def test_invalid_candidate_k_400(self, live, tiny_collection):
        with pytest.raises(ServiceClientError) as excinfo:
            live.identify(
                tiny_collection.get(0, FINGER, "D0", 1).template,
                device="D0",
                mode="two_stage",
                candidate_k=0,
            )
        assert excinfo.value.status == 400

    def test_server_default_mode_knob(self, tmp_path, tiny_collection, matcher):
        gallery = GalleryIndex(tmp_path / "gallery")
        server = _server(gallery, matcher, identify_mode="two_stage", candidate_k=2)
        with ServiceRunner(server) as (host, port):
            with ServiceClient(host, port) as client:
                for sid in SUBJECTS:
                    client.enroll(
                        f"subject-{sid}",
                        tiny_collection.get(sid, FINGER, "D0", 0).template,
                        device="D0",
                    )
                reply = client.identify(
                    tiny_collection.get(0, FINGER, "D0", 1).template, device="D0"
                )
                assert reply["search"]["mode"] == "two_stage"
                assert reply["search"]["candidates_scored"] == 2
                stats = client.stats()
                assert stats["identify"]["default_mode"] == "two_stage"
                assert stats["identify"]["candidate_k"] == 2

    def test_identify_telemetry_reaches_metrics(self, live, tiny_collection):
        probe = tiny_collection.get(0, FINGER, "D0", 1).template
        live.identify(probe, device="D0", mode="exact")
        live.identify(probe, device="D0", mode="two_stage")
        families = parse_exposition(live.metrics())
        assert sample_value(
            families, "repro_identify_searches_total", {"mode": "exact"}
        ) >= 1
        assert sample_value(
            families, "repro_identify_searches_total", {"mode": "two_stage"}
        ) >= 1
        assert sample_value(families, "repro_identify_candidates_total") >= 1
        assert sample_value(
            families, "repro_identify_prefilter_seconds_count", {}
        ) >= 1


class TestRetryAfterBackoff:
    """Satellite (c): the client honors Retry-After on 503s."""

    def test_retry_delay_reads_the_header(self, live):
        live.last_headers = {"retry-after": "2.5"}
        assert live.retry_delay() == 2.5
        live.last_headers = {"retry-after": "-3"}
        assert live.retry_delay() == 0.0
        live.last_headers = {"retry-after": "soon"}
        assert live.retry_delay() == 0.05
        live.last_headers = {}
        assert live.retry_delay(default=0.2) == 0.2

    def test_wait_until_healthy_backs_off_by_retry_after(self, monkeypatch, live):
        naps = []
        calls = {"n": 0}

        def fake_healthz():
            calls["n"] += 1
            if calls["n"] == 1:
                live.last_headers = {"retry-after": "0.123"}
                raise ServiceClientError(503, {"error": {"message": "full"}})
            return {"status": "ok"}

        monkeypatch.setattr(live, "healthz", fake_healthz)
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda s: naps.append(s)
        )
        assert live.wait_until_healthy(timeout_s=5.0)["status"] == "ok"
        assert naps and naps[0] == pytest.approx(0.123, abs=1e-6)
