"""Artifact-backed render/extract pipeline."""

import numpy as np
import pytest

from repro.imaging import ImagePipeline, RenderSettings
from repro.imaging.pipeline import template_from_bundle, template_to_arrays
from repro.runtime.artifacts import ArtifactStore
from repro.runtime.rng import SeedTree
from repro.runtime.telemetry import enable_telemetry, get_recorder, set_recorder
from repro.synthesis import synthesize_master_finger


@pytest.fixture()
def recorder():
    previous = get_recorder()
    live = enable_telemetry()
    yield live
    set_recorder(previous)


@pytest.fixture(scope="module")
def finger():
    return synthesize_master_finger(SeedTree(11).generator("finger"))


SETTINGS = RenderSettings(pixels_per_mm=8.0)
IDENTITY = {"seed": 11, "finger": "test"}


class TestTemplateCodec:
    def test_roundtrip(self, finger):
        from repro.imaging import extract_template, render_finger

        rendered = render_finger(finger, SETTINGS)
        template = extract_template(
            rendered.image, SETTINGS.pixels_per_mm, mask=rendered.mask
        )
        decoded = template_from_bundle(template_to_arrays(template))
        assert decoded == template

    def test_malformed_bundle_raises(self):
        with pytest.raises(KeyError):
            template_from_bundle({"positions_px": np.zeros((0, 2))})


class TestImagePipeline:
    def test_render_cached_roundtrip(self, finger, tmp_path, recorder):
        pipe = ImagePipeline(ArtifactStore(tmp_path / "arts"))
        cold = pipe.render(finger, IDENTITY, SETTINGS)
        warm = pipe.render(finger, IDENTITY, SETTINGS)
        np.testing.assert_array_equal(cold.image, warm.image)
        np.testing.assert_array_equal(cold.minutiae_px, warm.minutiae_px)
        np.testing.assert_array_equal(cold.mask, warm.mask)
        assert cold.pixels_per_mm == warm.pixels_per_mm
        assert recorder.metrics.counter_value("artifacts.hit") == 1

    def test_extract_cached_roundtrip(self, finger, tmp_path):
        pipe = ImagePipeline(ArtifactStore(tmp_path / "arts"))
        rendered = pipe.render(finger, IDENTITY, SETTINGS)
        cold = pipe.extract(
            rendered.image, SETTINGS.pixels_per_mm, IDENTITY, mask=rendered.mask
        )
        warm = pipe.extract(
            rendered.image, SETTINGS.pixels_per_mm, IDENTITY, mask=rendered.mask
        )
        assert cold == warm
        assert len(cold) > 0

    def test_identity_separates_entries(self, finger, tmp_path):
        pipe = ImagePipeline(ArtifactStore(tmp_path / "arts"))
        pipe.render(finger, {"subject": 1}, SETTINGS)
        pipe.render(finger, {"subject": 2}, SETTINGS)
        assert pipe.artifacts.stats()["images"]["entries"] == 2

    def test_disabled_store_computes(self, finger):
        pipe = ImagePipeline()
        rendered = pipe.render(finger, IDENTITY, SETTINGS)
        assert rendered.image.shape[0] > 0
        assert pipe.artifacts.stats()["total"]["entries"] == 0

    def test_corrupt_image_entry_recomputed(self, finger, tmp_path):
        store = ArtifactStore(tmp_path / "arts")
        pipe = ImagePipeline(store)
        cold = pipe.render(finger, IDENTITY, SETTINGS)
        tier_dir = tmp_path / "arts" / "images"
        entry = next(tier_dir.glob("*.npz"))
        entry.write_bytes(b"PK\x03\x04" + b"\x00" * 32)
        again = pipe.render(finger, IDENTITY, SETTINGS)
        np.testing.assert_array_equal(cold.image, again.image)
