"""Shared fixtures.

Expensive artifacts (acquired collections, full studies) are
session-scoped: the suite builds each size exactly once.  Sizes are kept
deliberately small — the integration "shape" tests use the medium study;
everything else should use the tiny one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    BioEngineMatcher,
    InteroperabilityStudy,
    Population,
    SeedTree,
    StudyConfig,
    build_collection,
)


@pytest.fixture(scope="session")
def tiny_config() -> StudyConfig:
    """A 10-subject configuration for unit-level pipeline tests."""
    return StudyConfig(n_subjects=10, master_seed=1234)


@pytest.fixture(scope="session")
def tiny_population(tiny_config) -> Population:
    return Population(tiny_config)


@pytest.fixture(scope="session")
def tiny_collection(tiny_config):
    return build_collection(tiny_config)


@pytest.fixture(scope="session")
def tiny_study(tiny_config) -> InteroperabilityStudy:
    """A tiny study with all score sets generated once per session."""
    study = InteroperabilityStudy(tiny_config)
    study.score_sets()
    return study


@pytest.fixture(scope="session")
def medium_study() -> InteroperabilityStudy:
    """A 36-subject study for statistical shape assertions."""
    study = InteroperabilityStudy(StudyConfig(n_subjects=36, master_seed=99))
    study.score_sets()
    return study


@pytest.fixture(scope="session")
def matcher() -> BioEngineMatcher:
    return BioEngineMatcher()


@pytest.fixture(scope="session")
def seed_tree() -> SeedTree:
    return SeedTree(20130624)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture(scope="session")
def genuine_template_pair(tiny_collection):
    """Two same-finger, same-device impressions (subject 0, D0)."""
    a = tiny_collection.get(0, "right_index", "D0", 0)
    b = tiny_collection.get(0, "right_index", "D0", 1)
    return a.template, b.template


@pytest.fixture(scope="session")
def impostor_template_pair(tiny_collection):
    """Two different-subject impressions on the same device."""
    a = tiny_collection.get(0, "right_index", "D0", 0)
    b = tiny_collection.get(1, "right_index", "D0", 0)
    return a.template, b.template
