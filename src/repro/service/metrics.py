"""Prometheus text exposition for the serving layer, dependency-free.

Two halves, both stdlib-only:

* :func:`render_exposition` — renders a :class:`~repro.service.stats.ServiceStats`
  (always on), the gallery footprint, the admission-queue depth, and —
  when telemetry is enabled — every metric in the process-wide
  :class:`~repro.runtime.telemetry.MetricsRegistry`, in the Prometheus
  text format (``# HELP`` / ``# TYPE`` / samples, histograms with
  cumulative ``le`` buckets ending in ``+Inf``).  The server mounts it
  at ``GET /metrics`` with the standard
  ``text/plain; version=0.0.4`` content type, so a stock Prometheus
  scraper can point at ``repro serve`` unmodified.

* :func:`parse_exposition` — a *strict* parser for the same format:
  metric-name and label grammar, TYPE-before-sample ordering, duplicate
  sample detection, and histogram invariants (cumulative buckets,
  ``+Inf`` bucket equal to ``_count``).  The test suite and the CI
  smoke job run every scrape through it, so a malformed exposition line
  is a failing build rather than a silently dropped scrape.

Metric name catalogue (all prefixed ``repro_``; see
``docs/observability.md`` for the full table):

========================================  =========  =====================
name                                      type       labels
========================================  =========  =====================
``repro_uptime_seconds``                  gauge      —
``repro_requests_total``                  counter    ``endpoint``
``repro_responses_total``                 counter    ``status``
``repro_request_latency_seconds``         histogram  ``endpoint``, ``device``
``repro_request_latency_window_ms``       gauge      ``endpoint``, ``quantile``
``repro_queue_wait_seconds``              histogram  —
``repro_batch_size``                      histogram  —
``repro_batch_requests``                  histogram  —
``repro_batches_total``                   counter    —
``repro_batched_jobs_total``              counter    —
``repro_expired_jobs_total``              counter    —
``repro_batch_last_id``                   gauge      —
``repro_queue_depth``                     gauge      —
``repro_decisions_total``                 counter    ``decision``
``repro_enroll_rejected_total``           counter    —
``repro_overloads_total``                 counter    —
``repro_deadline_exceeded_total``         counter    —
``repro_slow_requests_total``             counter    —
``repro_gallery_enrolled``                gauge      ``device``
``repro_identify_searches_total``         counter    ``mode``
``repro_identify_candidates_total``       counter    —
``repro_identify_prefilter_seconds``      histogram  —
``repro_worker_pool_size``                gauge      ``state``
``repro_worker_degraded``                 gauge      —
``repro_worker_dispatches_total``         counter    ``worker``
``repro_worker_dispatched_jobs_total``    counter    ``worker``
``repro_worker_respawns_total``           counter    ``worker``
``repro_worker_shard_size``               gauge      ``worker``
``repro_gallery_corrupt_dropped_total``   counter    —
``repro_wal_last_lsn``                    gauge      —
``repro_wal_checkpoint_lsn``              gauge      —
``repro_wal_segments``                    gauge      —
``repro_wal_size_bytes``                  gauge      —
``repro_wal_appends_total``               counter    —
``repro_wal_bytes_total``                 counter    —
``repro_wal_fsyncs_total``                counter    —
``repro_wal_rotations_total``             counter    —
``repro_wal_checkpoints_total``           counter    —
``repro_wal_segments_removed_total``      counter    —
``repro_wal_replayed_total``              counter    —
``repro_wal_torn_truncated_total``        counter    —
``repro_replication_role``                gauge      ``role``
``repro_replication_applied_lsn``         gauge      —
``repro_replication_lag_records``         gauge      —
``repro_replication_broken``              gauge      —
``repro_replication_rebootstraps_total``  counter    —
``repro_auth_enabled``                    gauge      —
``repro_auth_requests_total``             counter    ``outcome``
``repro_rate_limited_total``              counter    ``principal``
``repro_limit_buckets``                   gauge      —
``repro_telemetry_*``                     mixed      — (recorder passthrough)
========================================  =========  =====================
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from ..runtime.telemetry import get_recorder
from .stats import ServiceStats

#: The content type Prometheus' text exposition format 0.0.4 declares.
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value != value:  # NaN
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


class _Writer:
    """Accumulates exposition lines, one ``# TYPE`` block per family."""

    def __init__(self) -> None:
        self.lines: List[str] = []

    def family(self, name: str, kind: str, help_text: str) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(
        self, name: str, labels: Dict[str, str], value: float
    ) -> None:
        self.lines.append(f"{name}{_labels_text(labels)} {_format_value(value)}")

    def histogram(
        self,
        name: str,
        labels: Dict[str, str],
        bounds,
        bucket_counts,
        count: int,
        total: float,
    ) -> None:
        """Emit one labeled histogram series (cumulative ``le`` buckets).

        ``bucket_counts`` is non-cumulative with a final overflow slot,
        matching :class:`repro.service.stats._CumulativeHistogram` and
        :class:`repro.runtime.telemetry.MetricsRegistry` snapshots.
        """
        running = 0
        for bound, bucket in zip(bounds, bucket_counts):
            running += bucket
            self.sample(
                f"{name}_bucket",
                {**labels, "le": _format_value(float(bound))},
                running,
            )
        self.sample(f"{name}_bucket", {**labels, "le": "+Inf"}, count)
        self.sample(f"{name}_sum", labels, total)
        self.sample(f"{name}_count", labels, count)

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def _sanitize_name(raw: str) -> Optional[str]:
    """A telemetry metric name as a valid Prometheus name, or ``None``."""
    candidate = raw.replace(".", "_").replace("-", "_")
    return candidate if _NAME_RE.match(candidate) else None


def render_exposition(
    stats: ServiceStats,
    gallery_devices: Optional[Dict[str, int]] = None,
    queue_depth: Optional[int] = None,
    corrupt_dropped: Optional[int] = None,
    wal: Optional[dict] = None,
    replication: Optional[dict] = None,
    auth: Optional[dict] = None,
) -> str:
    """The full ``/metrics`` payload for one server.

    Parameters
    ----------
    stats:
        The server's live :class:`ServiceStats`.
    gallery_devices:
        Per-device enrollment counts (``GalleryIndex.stats()["devices"]``).
    queue_depth:
        Pair jobs currently queued in the micro-batcher.
    corrupt_dropped:
        Corrupt gallery records silently skipped at the last reload
        (``GalleryIndex.corrupt_dropped``).
    wal:
        The write-ahead log footprint/counters
        (``GalleryIndex.wal_stats()``; ``None`` on a follower).
    replication:
        The ``{role, applied_lsn, lag_records}`` block the server also
        reports in ``/v1/healthz``.
    auth:
        The admission-control block (``VerificationServer._auth_stats``):
        ``enabled``, per-outcome authentication tallies, per-principal
        429 tallies, and the limiter snapshot when one is configured.
    """
    w = _Writer()
    snapshot = stats.snapshot()

    w.family("repro_uptime_seconds", "gauge", "Seconds since server start.")
    w.sample("repro_uptime_seconds", {}, snapshot["uptime_seconds"])

    w.family("repro_requests_total", "counter",
             "HTTP requests finished, by endpoint (probes included).")
    for endpoint, count in sorted(snapshot["requests"].items()):
        w.sample("repro_requests_total", {"endpoint": endpoint}, count)

    w.family("repro_responses_total", "counter",
             "HTTP responses sent, by status code.")
    for status, count in sorted(snapshot["statuses"].items()):
        w.sample("repro_responses_total", {"status": status}, count)

    w.family("repro_request_latency_seconds", "histogram",
             "Request latency by endpoint and device (probes excluded).")
    for (endpoint, device), hist in stats.labeled_latency().items():
        labels = {"endpoint": endpoint}
        if device:
            labels["device"] = device
        w.histogram(
            "repro_request_latency_seconds", labels,
            hist["bounds"], hist["buckets"], hist["count"], hist["sum"],
        )

    w.family("repro_request_latency_window_ms", "gauge",
             "Exact sliding-window latency quantiles, milliseconds.")
    for endpoint, window in sorted(snapshot["latency"].items()):
        for quantile in ("p50_ms", "p95_ms", "p99_ms"):
            w.sample(
                "repro_request_latency_window_ms",
                {"endpoint": endpoint, "quantile": quantile[:-3]},
                window[quantile],
            )

    queue_wait = stats.queue_wait_snapshot()
    w.family("repro_queue_wait_seconds", "histogram",
             "Pair-job time spent in the admission queue.")
    w.histogram(
        "repro_queue_wait_seconds", {},
        queue_wait["bounds"], queue_wait["buckets"],
        queue_wait["count"], queue_wait["sum"],
    )

    batch_hists = stats.batch_histograms()
    w.family("repro_batch_size", "histogram",
             "Pair jobs per dispatched micro-batch.")
    size_hist = batch_hists["batch_size"]
    w.histogram("repro_batch_size", {}, size_hist["bounds"],
                size_hist["buckets"], size_hist["count"], size_hist["sum"])
    w.family("repro_batch_requests", "histogram",
             "Distinct requests coalesced per micro-batch.")
    req_hist = batch_hists["batch_requests"]
    w.histogram("repro_batch_requests", {}, req_hist["bounds"],
                req_hist["buckets"], req_hist["count"], req_hist["sum"])

    batching = snapshot["batching"]
    for name, help_text, value in (
        ("repro_batches_total", "Micro-batches dispatched.",
         batching["batches"]),
        ("repro_batched_jobs_total", "Pair jobs carried by batches.",
         batching["jobs"]),
        ("repro_expired_jobs_total", "Jobs expired in the queue.",
         batching["expired_jobs"]),
        ("repro_enroll_rejected_total", "Quality-gate enrollment refusals.",
         snapshot["enroll_rejected"]),
        ("repro_overloads_total", "Admissions refused on a full queue.",
         snapshot["overloads"]),
        ("repro_deadline_exceeded_total", "Requests past their deadline.",
         snapshot["deadline_exceeded"]),
        ("repro_slow_requests_total",
         "Requests over the REPRO_SERVE_SLOW_MS threshold.",
         snapshot["slow_requests"]),
    ):
        w.family(name, "counter", help_text)
        w.sample(name, {}, value)

    w.family("repro_decisions_total", "counter",
             "Verification decisions, by outcome.")
    for decision, count in sorted(snapshot["decisions"].items()):
        w.sample("repro_decisions_total", {"decision": decision}, count)

    w.family("repro_batch_last_id", "gauge",
             "Id of the most recently dispatched micro-batch.")
    w.sample("repro_batch_last_id", {}, batching["last_batch_id"])

    identify = snapshot["identify"]
    w.family("repro_identify_searches_total", "counter",
             "1:N identify searches, by search mode.")
    for mode, count in identify["modes"].items():
        w.sample("repro_identify_searches_total", {"mode": mode}, count)
    w.family("repro_identify_candidates_total", "counter",
             "Gallery templates scored by the exact matcher during identify.")
    w.sample("repro_identify_candidates_total", {},
             identify["candidates_scored"])
    prefilter = stats.prefilter_snapshot()
    w.family("repro_identify_prefilter_seconds", "histogram",
             "Wall time of the two-stage descriptor prefilter pass.")
    w.histogram("repro_identify_prefilter_seconds", {},
                prefilter["bounds"], prefilter["buckets"],
                prefilter["count"], prefilter["sum"])

    workers = snapshot["workers"]
    w.family("repro_worker_pool_size", "gauge",
             "Sharded serving pool width, configured and currently alive.")
    w.sample("repro_worker_pool_size", {"state": "configured"},
             workers["configured"])
    w.sample("repro_worker_pool_size", {"state": "alive"}, workers["alive"])
    w.family("repro_worker_degraded", "gauge",
             "1 when the pool fell back to in-process serving.")
    w.sample("repro_worker_degraded", {}, 1 if workers["degraded"] else 0)
    w.family("repro_worker_dispatches_total", "counter",
             "RPCs dispatched to each sharded worker.")
    for worker, count in workers["dispatches"].items():
        w.sample("repro_worker_dispatches_total", {"worker": worker}, count)
    w.family("repro_worker_dispatched_jobs_total", "counter",
             "Pair jobs carried by dispatches to each sharded worker.")
    for worker, count in workers["dispatched_jobs"].items():
        w.sample("repro_worker_dispatched_jobs_total", {"worker": worker},
                 count)
    w.family("repro_worker_respawns_total", "counter",
             "Crash-or-stall respawns of each sharded worker.")
    for worker, count in workers["respawns"].items():
        w.sample("repro_worker_respawns_total", {"worker": worker}, count)
    w.family("repro_worker_shard_size", "gauge",
             "Gallery records owned by each sharded worker.")
    for worker, count in workers["shard_sizes"].items():
        w.sample("repro_worker_shard_size", {"worker": worker}, count)

    if queue_depth is not None:
        w.family("repro_queue_depth", "gauge",
                 "Pair jobs currently awaiting a batch slot.")
        w.sample("repro_queue_depth", {}, queue_depth)

    if gallery_devices is not None:
        w.family("repro_gallery_enrolled", "gauge",
                 "Enrolled templates per device shard.")
        for device, count in sorted(gallery_devices.items()):
            w.sample("repro_gallery_enrolled", {"device": device}, count)

    if corrupt_dropped is not None:
        w.family("repro_gallery_corrupt_dropped_total", "counter",
                 "Corrupt gallery records dropped at the last reload.")
        w.sample("repro_gallery_corrupt_dropped_total", {}, corrupt_dropped)

    if wal is not None:
        for name, help_text, value in (
            ("repro_wal_last_lsn",
             "Sequence number of the newest logged operation.",
             wal.get("last_lsn", 0)),
            ("repro_wal_checkpoint_lsn",
             "Operations at or below this LSN are durably applied.",
             wal.get("checkpoint_lsn", 0)),
            ("repro_wal_segments", "Retained write-ahead log segments.",
             wal.get("segments", 0)),
            ("repro_wal_size_bytes", "On-disk bytes across WAL segments.",
             wal.get("size_bytes", 0)),
        ):
            w.family(name, "gauge", help_text)
            w.sample(name, {}, value)
        for name, help_text, value in (
            ("repro_wal_appends_total", "Records appended to the WAL.",
             wal.get("appends", 0)),
            ("repro_wal_bytes_total", "Frame bytes appended to the WAL.",
             wal.get("bytes", 0)),
            ("repro_wal_fsyncs_total", "fsync calls issued by the WAL.",
             wal.get("fsyncs", 0)),
            ("repro_wal_rotations_total", "Segment seals (rotations).",
             wal.get("rotations", 0)),
            ("repro_wal_checkpoints_total", "Checkpoints written.",
             wal.get("checkpoints", 0)),
            ("repro_wal_segments_removed_total",
             "Sealed segments compacted away after checkpoints.",
             wal.get("segments_removed", 0)),
            ("repro_wal_replayed_total",
             "Records replayed from the WAL at startup.",
             wal.get("replayed", 0)),
            ("repro_wal_torn_truncated_total",
             "Torn WAL tails truncated during replay.",
             wal.get("torn_truncated", 0)),
        ):
            w.family(name, "counter", help_text)
            w.sample(name, {}, value)

    if replication is not None:
        w.family("repro_replication_role", "gauge",
                 "1 for the role this server is playing.")
        w.sample("repro_replication_role",
                 {"role": replication.get("role", "primary")}, 1)
        w.family("repro_replication_applied_lsn", "gauge",
                 "Newest WAL operation applied by this server.")
        w.sample("repro_replication_applied_lsn", {},
                 replication.get("applied_lsn", 0))
        w.family("repro_replication_lag_records", "gauge",
                 "WAL records written but not yet applied here.")
        w.sample("repro_replication_lag_records", {},
                 replication.get("lag_records", 0))
        w.family("repro_replication_broken", "gauge",
                 "1 when follower replication stopped on an error.")
        w.sample("repro_replication_broken", {},
                 1 if replication.get("error") else 0)
        w.family("repro_replication_rebootstraps_total", "counter",
                 "Follower re-bootstraps after falling past WAL retention.")
        w.sample("repro_replication_rebootstraps_total", {},
                 replication.get("rebootstraps", 0))

    if auth is not None:
        w.family("repro_auth_enabled", "gauge",
                 "1 when keyed authentication is enforced.")
        w.sample("repro_auth_enabled", {}, 1 if auth.get("enabled") else 0)
        w.family("repro_auth_requests_total", "counter",
                 "Authentication decisions on a keyed server, by outcome.")
        for outcome, count in sorted(auth.get("outcomes", {}).items()):
            w.sample("repro_auth_requests_total", {"outcome": outcome}, count)
        w.family("repro_rate_limited_total", "counter",
                 "Requests refused by the rate limiter, by principal.")
        w.sample("repro_rate_limited_total", {},
                 auth.get("rate_limited_total", 0))
        for principal, count in sorted(
            auth.get("rate_limited", {}).items()
        ):
            w.sample("repro_rate_limited_total", {"principal": principal},
                     count)
        limits = auth.get("limits")
        if limits is not None:
            w.family("repro_limit_buckets", "gauge",
                     "Live (principal, class) token buckets in the LRU.")
            w.sample("repro_limit_buckets", {}, limits["bucket_occupancy"])

    _render_recorder_metrics(w)
    return w.text()


def _render_recorder_metrics(w: _Writer) -> None:
    """Pass the live telemetry registry through, ``repro_telemetry_``-prefixed.

    Only runs when telemetry is enabled; the always-on ServiceStats
    families above carry the serving story by themselves.
    """
    recorder = get_recorder()
    if not recorder.active:
        return
    snap = recorder.metrics.snapshot()
    for name, value in sorted(snap["counters"].items()):
        prom = _sanitize_name(f"repro_telemetry_{name}_total")
        if prom is None:
            continue
        w.family(prom, "counter", f"Telemetry counter {name}.")
        w.sample(prom, {}, value)
    for name, value in sorted(snap["gauges"].items()):
        prom = _sanitize_name(f"repro_telemetry_{name}")
        if prom is None:
            continue
        w.family(prom, "gauge", f"Telemetry gauge {name}.")
        w.sample(prom, {}, value)
    bounds = snap["bucket_bounds"]
    for name, hist in sorted(snap["histograms"].items()):
        prom = _sanitize_name(f"repro_telemetry_{name}")
        if prom is None:
            continue
        w.family(prom, "histogram", f"Telemetry histogram {name}.")
        w.histogram(prom, {}, bounds, hist["buckets"],
                    hist["count"], hist["sum"])


# ----------------------------------------------------------------------
# Strict exposition-format parser (test helper; CI runs every scrape
# through it)
# ----------------------------------------------------------------------
class ExpositionParseError(ValueError):
    """The scraped payload violates the text exposition format."""


def _parse_value(text: str, where: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise ExpositionParseError(f"{where}: unparsable value {text!r}")


def _parse_labels(raw: str, where: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    position = 0
    while position < len(raw):
        match = _LABEL_PAIR_RE.match(raw, position)
        if match is None:
            raise ExpositionParseError(f"{where}: malformed labels {raw!r}")
        name = match.group("name")
        if not _LABEL_RE.match(name):
            raise ExpositionParseError(f"{where}: bad label name {name!r}")
        if name in labels:
            raise ExpositionParseError(f"{where}: duplicate label {name!r}")
        value = match.group("value")
        labels[name] = (
            value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        )
        position = match.end()
    return labels


def _base_family(name: str) -> str:
    """The family a sample belongs to (strips histogram suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_exposition(text: str) -> Dict[str, dict]:
    """Parse (and strictly validate) a text-format exposition payload.

    Returns ``{family: {"type": ..., "help": ..., "samples":
    [(name, labels, value), ...]}}``.  Raises
    :class:`ExpositionParseError` on any violation: bad metric or label
    grammar, samples before their ``# TYPE``, duplicate series,
    non-cumulative histogram buckets, missing ``+Inf`` bucket, or a
    ``+Inf`` bucket that disagrees with ``_count``.
    """
    families: Dict[str, dict] = {}
    seen_series = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        where = f"line {lineno}"
        if not line:
            continue
        if line != line.strip():
            raise ExpositionParseError(f"{where}: stray whitespace: {line!r}")
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4:
                raise ExpositionParseError(f"{where}: malformed HELP line")
            name = parts[2]
            if not _NAME_RE.match(name):
                raise ExpositionParseError(f"{where}: bad metric name {name!r}")
            families.setdefault(
                name, {"type": None, "help": None, "samples": []}
            )["help"] = parts[3]
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ExpositionParseError(f"{where}: malformed TYPE line")
            name, kind = parts[2], parts[3]
            if not _NAME_RE.match(name):
                raise ExpositionParseError(f"{where}: bad metric name {name!r}")
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                raise ExpositionParseError(f"{where}: unknown type {kind!r}")
            family = families.setdefault(
                name, {"type": None, "help": None, "samples": []}
            )
            if family["type"] is not None:
                raise ExpositionParseError(f"{where}: duplicate TYPE for {name}")
            if family["samples"]:
                raise ExpositionParseError(
                    f"{where}: TYPE for {name} after its samples"
                )
            family["type"] = kind
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ExpositionParseError(f"{where}: unparsable sample {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels") or "", where)
        value = _parse_value(match.group("value"), where)
        family_name = _base_family(name)
        family = families.get(family_name)
        if family is None or family["type"] is None:
            # Histogram suffix stripping may not apply (plain metric
            # whose name ends in _count); fall back to the full name.
            family = families.get(name)
            family_name = name
        if family is None or family["type"] is None:
            raise ExpositionParseError(
                f"{where}: sample {name!r} before its # TYPE"
            )
        series_key = (name, tuple(sorted(labels.items())))
        if series_key in seen_series:
            raise ExpositionParseError(
                f"{where}: duplicate series {name}{labels!r}"
            )
        seen_series.add(series_key)
        family["samples"].append((name, labels, value))
    _validate_histograms(families)
    return families


def _validate_histograms(families: Dict[str, dict]) -> None:
    for family_name, family in families.items():
        if family["type"] != "histogram":
            continue
        series: Dict[Tuple, List[Tuple[float, float]]] = {}
        counts: Dict[Tuple, float] = {}
        for name, labels, value in family["samples"]:
            key = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            if name == f"{family_name}_bucket":
                if "le" not in labels:
                    raise ExpositionParseError(
                        f"{family_name}: bucket sample missing 'le'"
                    )
                bound = _parse_value(labels["le"], family_name)
                series.setdefault(key, []).append((bound, value))
            elif name == f"{family_name}_count":
                counts[key] = value
        for key, buckets in series.items():
            ordered = sorted(buckets, key=lambda item: item[0])
            cumulative = [count for _, count in ordered]
            if cumulative != sorted(cumulative):
                raise ExpositionParseError(
                    f"{family_name}{dict(key)!r}: buckets not cumulative"
                )
            if not ordered or ordered[-1][0] != math.inf:
                raise ExpositionParseError(
                    f"{family_name}{dict(key)!r}: missing +Inf bucket"
                )
            if key in counts and ordered[-1][1] != counts[key]:
                raise ExpositionParseError(
                    f"{family_name}{dict(key)!r}: +Inf bucket "
                    f"{ordered[-1][1]} != count {counts[key]}"
                )


def sample_value(
    families: Dict[str, dict],
    name: str,
    labels: Optional[Dict[str, str]] = None,
) -> Optional[float]:
    """Convenience: one sample's value from a parsed exposition.

    ``name`` is the full sample name (e.g. ``repro_requests_total`` or
    ``repro_batch_size_count``); ``labels`` must match exactly.
    """
    wanted = labels or {}
    family = families.get(_base_family(name)) or families.get(name)
    if family is None:
        return None
    for sample_name, sample_labels, value in family["samples"]:
        if sample_name == name and sample_labels == wanted:
            return value
    return None


__all__ = [
    "EXPOSITION_CONTENT_TYPE",
    "ExpositionParseError",
    "render_exposition",
    "parse_exposition",
    "sample_value",
]
