"""Durability and replication: crash-safe enrollment, follower parity.

Three layers of the durability contract:

* gallery-level — the write-ahead log re-materializes shard files that
  vanish or rot between restarts (acked ⇒ durable);
* process-level — a server SIGKILLed mid-enroll-burst loses nothing it
  acknowledged (the kill-9 recovery scenario from the robustness plan);
* replica-level — a ``--follow`` server tailing the primary's WAL
  answers reads byte-identically at ``lag_records == 0`` and refuses
  writes with the ``read_only`` error code.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import (
    BatchingConfig,
    GalleryIndex,
    GalleryReadOnlyError,
    ServiceClient,
    ServiceClientError,
    ServiceRunner,
    VerificationServer,
    parse_exposition,
    sample_value,
)

FINGER = "right_index"
SUBJECTS = (0, 1, 2)


def _server(gallery, matcher, **kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("batching", BatchingConfig(max_wait_ms=5.0))
    return VerificationServer(gallery, matcher=matcher, **kwargs)


class TestGalleryDurability:
    def test_wal_rebuilds_deleted_shard_file(self, tmp_path, tiny_collection):
        root = tmp_path / "gallery"
        with GalleryIndex(root) as gallery:
            for sid in SUBJECTS:
                gallery.enroll(
                    f"subject-{sid}",
                    tiny_collection.get(sid, FINGER, "D0", 0).template,
                    device="D0",
                )
        (root / "D0" / "subject-1.npz").unlink()

        reborn = GalleryIndex(root)
        assert len(reborn) == len(SUBJECTS)
        healed = reborn.get("subject-1", device="D0")
        assert healed.template == tiny_collection.get(1, FINGER, "D0", 0).template

    def test_wal_rebuilds_entire_gallery(self, tmp_path, tiny_collection):
        import shutil

        root = tmp_path / "gallery"
        with GalleryIndex(root) as gallery:
            for sid in SUBJECTS:
                gallery.enroll(
                    f"subject-{sid}",
                    tiny_collection.get(sid, FINGER, "D0", 0).template,
                    device="D0",
                )
        shutil.rmtree(root / "D0")

        reborn = GalleryIndex(root)
        assert len(reborn) == len(SUBJECTS)
        assert reborn.identities("D0") == [f"subject-{s}" for s in SUBJECTS]

    def test_replay_respects_logged_deletes(self, tmp_path, tiny_collection):
        root = tmp_path / "gallery"
        with GalleryIndex(root) as gallery:
            for sid in SUBJECTS:
                gallery.enroll(
                    f"subject-{sid}",
                    tiny_collection.get(sid, FINGER, "D0", 0).template,
                    device="D0",
                )
            gallery.delete("subject-0", device="D0")
        reborn = GalleryIndex(root)
        assert len(reborn) == 2
        assert ("D0", "subject-0") not in reborn

    def test_readonly_gallery_refuses_writes(self, tmp_path, tiny_collection):
        root = tmp_path / "gallery"
        template = tiny_collection.get(0, FINGER, "D0", 0).template
        with GalleryIndex(root) as gallery:
            gallery.enroll("subject-0", template, device="D0")

        replica = GalleryIndex(root, readonly=True)
        assert len(replica) == 1
        with pytest.raises(GalleryReadOnlyError):
            replica.enroll("subject-9", template, device="D0")
        with pytest.raises(GalleryReadOnlyError):
            replica.delete("subject-0", device="D0")


_KILL9_CHILD = """
import sys
from pathlib import Path

from repro.api import StudyConfig, build_collection
from repro.service.gallery import GalleryIndex

template = (
    build_collection(StudyConfig(n_subjects=2, master_seed=7))
    .get(0, "right_index", "D0", 0)
    .template
)
gallery = GalleryIndex(Path(sys.argv[1]))
i = 0
while True:
    gallery.enroll(f"id-{i:04d}", template, device="D0")
    print(f"id-{i:04d}", flush=True)  # the ack: past this line => durable
    i += 1
"""


class TestKillNineRecovery:
    def test_sigkill_mid_burst_loses_no_acked_enrollment(self, tmp_path):
        """SIGKILL a process mid-enroll-burst; every acked write survives."""
        root = tmp_path / "gallery"
        script = tmp_path / "burst.py"
        script.write_text(_KILL9_CHILD)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parents[2] / "src"
        ) + os.pathsep + env.get("PYTHONPATH", "")

        child = subprocess.Popen(
            [sys.executable, str(script), str(root)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        acked = []
        try:
            deadline = time.monotonic() + 120.0
            while len(acked) < 5 and time.monotonic() < deadline:
                line = child.stdout.readline()
                if not line:
                    break
                acked.append(line.strip())
        finally:
            child.kill()  # SIGKILL: no atexit, no flush, no cleanup
            child.wait(timeout=30)
        assert len(acked) >= 5, (
            f"burst child never got going: {child.stderr.read()}"
        )

        reborn = GalleryIndex(root)
        present = set(reborn.identities("D0"))
        missing = [i for i in acked if i not in present]
        assert not missing, f"acked enrollments lost across kill -9: {missing}"
        # Unacked work may appear (logged before the kill landed) but
        # only whole: every surviving record loads and matches its name.
        for identity in present:
            record = reborn.get(identity, device="D0")
            assert record.identity == identity
            assert record.template.minutiae


def _follower_pair(root, matcher):
    follower_gallery = GalleryIndex(root, readonly=True)
    return _server(follower_gallery, matcher, follow=root / "__wal__")


@pytest.fixture()
def replicated(tmp_path, tiny_collection, matcher):
    """A primary with three enrollments plus a follower tailing its WAL."""
    root = tmp_path / "gallery"
    with ServiceRunner(_server(GalleryIndex(root), matcher)) as (phost, pport):
        with ServiceClient(phost, pport) as primary:
            for sid in SUBJECTS:
                primary.enroll(
                    f"subject-{sid}",
                    tiny_collection.get(sid, FINGER, "D0", 0).template,
                    device="D0",
                )
            with ServiceRunner(_follower_pair(root, matcher)) as (fhost, fport):
                with ServiceClient(fhost, fport) as follower:
                    follower.wait_until_healthy()
                    yield primary, follower


def _scrub_timing(reply):
    """Drop the one legitimately nondeterministic field before comparing."""
    if isinstance(reply.get("search"), dict):
        reply["search"].pop("prefilter_seconds", None)
    return reply


class TestFollowerReplica:
    def test_healthz_reports_replication(self, replicated):
        primary, follower = replicated
        p = primary.healthz()["replication"]
        f = follower.healthz()["replication"]
        assert p["role"] == "primary"
        assert f["role"] == "follower"
        assert f["lag_records"] == 0
        assert f["applied_lsn"] == p["applied_lsn"] == len(SUBJECTS)

    def test_verify_is_bit_identical(self, replicated, tiny_collection):
        primary, follower = replicated
        probe = tiny_collection.get(0, FINGER, "D0", 1).template
        a = primary.verify("subject-0", probe, device="D0")
        b = follower.verify("subject-0", probe, device="D0")
        assert a == b
        assert a["decision"] == "accept"

    @pytest.mark.parametrize("mode", ["exact", "two_stage"])
    def test_identify_is_bit_identical(self, replicated, tiny_collection, mode):
        primary, follower = replicated
        probe = tiny_collection.get(1, FINGER, "D0", 1).template
        a = _scrub_timing(primary.identify(probe, device="D0", mode=mode))
        b = _scrub_timing(follower.identify(probe, device="D0", mode=mode))
        assert a == b
        assert a["best"]["identity"] == "subject-1"

    def test_writes_rejected_with_read_only(self, replicated, tiny_collection):
        _, follower = replicated
        template = tiny_collection.get(3, FINGER, "D0", 0).template
        with pytest.raises(ServiceClientError) as excinfo:
            follower.enroll("subject-3", template, device="D0")
        assert excinfo.value.status == 403
        assert excinfo.value.code == "read_only"
        with pytest.raises(ServiceClientError) as excinfo:
            follower.delete("subject-0", device="D0")
        assert excinfo.value.status == 403
        assert excinfo.value.code == "read_only"

    def test_live_writes_propagate(self, replicated, tiny_collection):
        primary, follower = replicated
        template = tiny_collection.get(3, FINGER, "D0", 0).template
        primary.enroll("subject-3", template, device="D0")

        health = follower.healthz()["replication"]  # healthz drains first
        assert health["lag_records"] == 0
        assert health["applied_lsn"] == len(SUBJECTS) + 1
        probe = tiny_collection.get(3, FINGER, "D0", 1).template
        assert follower.verify("subject-3", probe, device="D0")[
            "decision"
        ] == "accept"

        primary.delete("subject-3", device="D0")
        assert follower.healthz()["replication"]["applied_lsn"] == (
            len(SUBJECTS) + 2
        )
        with pytest.raises(ServiceClientError) as excinfo:
            follower.verify("subject-3", probe, device="D0")
        assert excinfo.value.status == 404

    def test_follower_metrics_expose_role_and_lag(self, replicated):
        _, follower = replicated
        families = parse_exposition(follower.metrics())
        assert sample_value(
            families, "repro_replication_role", {"role": "follower"}
        ) == 1
        assert sample_value(
            families, "repro_replication_lag_records", {}
        ) == 0
        assert sample_value(families, "repro_replication_broken", {}) == 0

    def test_client_routes_reads_to_replica(
        self, tmp_path, tiny_collection, matcher
    ):
        root = tmp_path / "gallery"
        with ServiceRunner(_server(GalleryIndex(root), matcher)) as (ph, pp):
            with ServiceClient(ph, pp) as seed:
                seed.enroll(
                    "subject-0",
                    tiny_collection.get(0, FINGER, "D0", 0).template,
                    device="D0",
                )
            with ServiceRunner(_follower_pair(root, matcher)) as (fh, fp):
                with ServiceClient(fh, fp) as probe_client:
                    probe_client.wait_until_healthy()
                with ServiceClient(ph, pp, follower=(fh, fp)) as combined:
                    probe = tiny_collection.get(0, FINGER, "D0", 1).template
                    reply = combined.verify("subject-0", probe, device="D0")
                    assert reply["decision"] == "accept"
                    # The replica really answered: its request id is ours.
                    assert combined.last_request_id == (
                        combined.follower.last_request_id
                    )

    def test_client_falls_back_when_replica_dies(
        self, tmp_path, tiny_collection, matcher
    ):
        root = tmp_path / "gallery"
        with ServiceRunner(_server(GalleryIndex(root), matcher)) as (ph, pp):
            # Point the follower slot at a port nobody listens on.
            with ServiceClient(ph, pp, follower=("127.0.0.1", 1)) as client:
                client.enroll(
                    "subject-0",
                    tiny_collection.get(0, FINGER, "D0", 0).template,
                    device="D0",
                )
                probe = tiny_collection.get(0, FINGER, "D0", 1).template
                reply = client.verify("subject-0", probe, device="D0")
                assert reply["decision"] == "accept"


class TestFollowerFleet:
    def test_reads_round_robin_across_replicas(
        self, tmp_path, tiny_collection, matcher
    ):
        root = tmp_path / "gallery"
        with ServiceRunner(_server(GalleryIndex(root), matcher)) as (ph, pp):
            with ServiceClient(ph, pp) as seed:
                seed.enroll(
                    "subject-0",
                    tiny_collection.get(0, FINGER, "D0", 0).template,
                    device="D0",
                )
            with ServiceRunner(_follower_pair(root, matcher)) as (f1h, f1p):
                with ServiceRunner(_follower_pair(root, matcher)) as (f2h, f2p):
                    for fh, fp in ((f1h, f1p), (f2h, f2p)):
                        with ServiceClient(fh, fp) as ready:
                            ready.wait_until_healthy()
                    probe = tiny_collection.get(0, FINGER, "D0", 1).template
                    with ServiceClient(
                        ph, pp, followers=[(f1h, f1p), (f2h, f2p)]
                    ) as fleet:
                        served_by = []
                        for _ in range(4):
                            reply = fleet.verify(
                                "subject-0", probe, device="D0"
                            )
                            assert reply["decision"] == "accept"
                            served_by.append(
                                [
                                    replica.last_request_id
                                    for replica in fleet.followers
                                ].index(fleet.last_request_id)
                            )
                        # Successive reads alternate replicas.
                        assert served_by == [0, 1, 0, 1]

    def test_dead_first_replica_is_skipped(
        self, tmp_path, tiny_collection, matcher
    ):
        root = tmp_path / "gallery"
        with ServiceRunner(_server(GalleryIndex(root), matcher)) as (ph, pp):
            with ServiceClient(ph, pp) as seed:
                seed.enroll(
                    "subject-0",
                    tiny_collection.get(0, FINGER, "D0", 0).template,
                    device="D0",
                )
            with ServiceRunner(_follower_pair(root, matcher)) as (fh, fp):
                with ServiceClient(fh, fp) as ready:
                    ready.wait_until_healthy()
                probe = tiny_collection.get(0, FINGER, "D0", 1).template
                with ServiceClient(
                    ph, pp, followers=[("127.0.0.1", 1), (fh, fp)]
                ) as fleet:
                    reply = fleet.verify("subject-0", probe, device="D0")
                    assert reply["decision"] == "accept"
                    # The live replica (slot 1) answered, not the primary.
                    assert fleet.last_request_id == (
                        fleet.followers[1].last_request_id
                    )


class TestFollowerRebootstrap:
    def test_follower_rebootstraps_past_wal_retention(
        self, tmp_path, tiny_collection, matcher, monkeypatch
    ):
        """A follower that falls past WAL retention heals itself.

        Tiny segments + zero retained generations make the primary
        compact aggressively; a huge poll interval keeps the follower
        idle so every drain happens inside ``/healthz``, which makes
        the fall-behind → rebootstrap → catch-up sequence deterministic.
        """
        monkeypatch.setenv("REPRO_WAL_SEGMENT_BYTES", "512")
        monkeypatch.setenv("REPRO_WAL_KEEP_SEGMENTS", "0")
        monkeypatch.setenv("REPRO_WAL_POLL_MS", "60000")
        root = tmp_path / "gallery"
        template = tiny_collection.get(0, FINGER, "D0", 0).template
        with ServiceRunner(_server(GalleryIndex(root), matcher)) as (ph, pp):
            with ServiceClient(ph, pp) as primary:
                primary.enroll("subject-0", template, device="D0")
                with ServiceRunner(_follower_pair(root, matcher)) as (fh, fp):
                    with ServiceClient(fh, fp) as follower:
                        health = follower.wait_until_healthy()
                        assert health["replication"]["rebootstraps"] == 0
                        # Burst writes on the primary: each enroll seals
                        # a segment and the checkpoint compacts it away,
                        # pulling retention out from under the idle
                        # follower's cursor.
                        bulk = tiny_collection.get(1, FINGER, "D0", 0).template
                        for index in range(10):
                            primary.enroll(
                                f"bulk-{index}", bulk, device="D0"
                            )
                        replication = follower.healthz()["replication"]
                        assert replication["rebootstraps"] == 1
                        assert replication["lag_records"] == 0
                        assert replication["applied_lsn"] == 11
                        assert "error" not in replication
                        # The rebootstrapped replica serves the writes
                        # it never saw stream past.
                        probe = tiny_collection.get(1, FINGER, "D0", 1).template
                        assert follower.verify(
                            "bulk-9", probe, device="D0"
                        )["decision"] == "accept"
                        families = parse_exposition(follower.metrics())
                        assert sample_value(
                            families,
                            "repro_replication_rebootstraps_total",
                            {},
                        ) == 1
                        assert sample_value(
                            families, "repro_replication_broken", {}
                        ) == 0
