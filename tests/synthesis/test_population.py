"""Population assembly and determinism."""

import pytest

from repro.runtime import StudyConfig
from repro.synthesis import FINGER_LABELS, Population


class TestAccess:
    def test_len(self, tiny_population, tiny_config):
        assert len(tiny_population) == tiny_config.n_subjects

    def test_out_of_range(self, tiny_population):
        with pytest.raises(IndexError):
            tiny_population.subject(10_000)
        with pytest.raises(IndexError):
            tiny_population.subject(-1)

    def test_memoized(self, tiny_population):
        assert tiny_population.subject(0) is tiny_population.subject(0)

    def test_iteration_covers_all(self, tiny_population):
        ids = [s.subject_id for s in tiny_population]
        assert ids == list(range(len(tiny_population)))

    def test_finger_labels_respect_config(self):
        pop = Population(StudyConfig(n_subjects=3, fingers_per_subject=1))
        assert pop.finger_labels == FINGER_LABELS[:1]
        assert pop.primary_finger == "right_index"


class TestDeterminism:
    def test_same_config_same_subjects(self, tiny_config):
        a = Population(tiny_config).subject(3)
        b = Population(tiny_config).subject(3)
        assert a.fingers["right_index"].minutiae == b.fingers["right_index"].minutiae
        assert a.demographics == b.demographics
        assert a.traits == b.traits

    def test_subjects_mutually_distinct(self, tiny_population):
        a = tiny_population.subject(0).fingers["right_index"]
        b = tiny_population.subject(1).fingers["right_index"]
        assert a.minutiae != b.minutiae

    def test_fingers_of_one_subject_distinct(self, tiny_population):
        subject = tiny_population.subject(0)
        assert (
            subject.fingers["right_index"].minutiae
            != subject.fingers["right_middle"].minutiae
        )

    def test_seed_changes_population(self, tiny_config):
        other = Population(tiny_config.replace(master_seed=999))
        assert (
            other.subject(0).fingers["right_index"].minutiae
            != Population(tiny_config).subject(0).fingers["right_index"].minutiae
        )


class TestDemographicsTable:
    def test_table_sums_to_population(self, tiny_population):
        table = tiny_population.demographics_table()
        assert sum(table["age"].values()) == len(tiny_population)
        assert sum(table["ethnicity"].values()) == len(tiny_population)
