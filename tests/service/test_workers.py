"""Sharded serving: worker pool parity, supervision, and teardown.

The acceptance property for the whole subsystem is *bit-identity*: a
server with ``workers=2`` must answer ``/verify`` and ``/identify``
(both modes) byte-for-byte like the single-process control arm — under
clean runs AND under injected worker crashes/stalls.  The satellites
ride along: shard assignment determinism, /dev/shm teardown, the
``workers`` healthz block, and the ``repro_worker_*`` metric families.
"""

import copy
import json
from multiprocessing import shared_memory

import pytest

from repro.service import (
    BatchingConfig,
    GalleryIndex,
    ServiceClient,
    ServiceRunner,
    VerificationServer,
    parse_exposition,
    sample_value,
    shard_of,
)

FINGER = "right_index"
#: Subjects enrolled on D0; a subset re-enrolled on D1 for cross-device.
D0_SUBJECTS = (0, 1, 2, 3, 4, 5)
D1_SUBJECTS = (0, 1, 2)


def _server(gallery, matcher, **kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("batching", BatchingConfig(max_wait_ms=5.0))
    return VerificationServer(gallery, matcher=matcher, **kwargs)


def _enroll_all(client, tiny_collection):
    for sid in D0_SUBJECTS:
        client.enroll(
            f"subject-{sid}",
            tiny_collection.get(sid, FINGER, "D0", 0).template,
            device="D0",
        )
    for sid in D1_SUBJECTS:
        client.enroll(
            f"subject-{sid}",
            tiny_collection.get(sid, FINGER, "D1", 0).template,
            device="D1",
        )


def _normalize(reply: dict) -> dict:
    """Strip the one wall-clock field; everything else must be identical."""
    reply = copy.deepcopy(reply)
    if "search" in reply:
        reply["search"].pop("prefilter_seconds", None)
    return reply


def _probe_replies(client, tiny_collection) -> list:
    """The comparison battery: both identify modes, scoped and global,
    plus a verify — captured as normalized JSON-stable dicts."""
    probes = [
        tiny_collection.get(1, FINGER, "D0", 1).template,
        tiny_collection.get(4, FINGER, "D1", 1).template,
    ]
    replies = []
    for probe in probes:
        for mode in ("exact", "two_stage"):
            replies.append(_normalize(
                client.identify(probe, device="D0", mode=mode, candidate_k=4)
            ))
            replies.append(_normalize(
                client.identify(probe, device=None, mode=mode, candidate_k=4)
            ))
    replies.append(_normalize(client.verify(
        "subject-2",
        tiny_collection.get(2, FINGER, "D0", 1).template,
        device="D0",
    )))
    return replies


@pytest.fixture()
def gallery_root(tmp_path, tiny_collection, matcher):
    """A persisted gallery directory enrolled via the single-process path."""
    root = tmp_path / "gallery"
    with ServiceRunner(_server(GalleryIndex(root), matcher)) as (host, port):
        with ServiceClient(host, port) as client:
            _enroll_all(client, tiny_collection)
    return root


class TestShardOf:
    def test_deterministic_and_in_range(self):
        for n in (2, 3, 7):
            for identity in ("subject-0", "subject-1", "x", ""):
                first = shard_of(identity, n)
                assert 0 <= first < n
                assert shard_of(identity, n) == first

    def test_identity_only_no_device(self):
        # Cross-device copies of one identity must land on one worker,
        # so the shard function cannot depend on the device.
        assert shard_of("subject-3", 4) == shard_of("subject-3", 4)

    def test_spreads_identities(self):
        owners = {shard_of(f"subject-{i}", 2) for i in range(32)}
        assert owners == {0, 1}


class TestShardedParity:
    def test_bit_identical_to_single_process(
        self, gallery_root, tiny_collection, matcher
    ):
        with ServiceRunner(
            _server(GalleryIndex(gallery_root), matcher)
        ) as (host, port):
            with ServiceClient(host, port) as client:
                control = _probe_replies(client, tiny_collection)

        with ServiceRunner(
            _server(GalleryIndex(gallery_root), matcher, workers=2)
        ) as (host, port):
            with ServiceClient(host, port) as client:
                assert client.healthz()["workers"]["alive"] == 2
                sharded = _probe_replies(client, tiny_collection)

        assert json.dumps(sharded, sort_keys=True) == json.dumps(
            control, sort_keys=True
        )

    def test_enroll_and_delete_propagate_to_workers(
        self, gallery_root, tiny_collection, matcher
    ):
        server = _server(GalleryIndex(gallery_root), matcher, workers=2)
        with ServiceRunner(server) as (host, port):
            with ServiceClient(host, port) as client:
                # A post-snapshot enrollment must be immediately
                # searchable (the delta log reaches the owning worker
                # before the enroll response returns).
                client.enroll(
                    "subject-7",
                    tiny_collection.get(7, FINGER, "D0", 0).template,
                    device="D0",
                )
                probe = tiny_collection.get(7, FINGER, "D0", 1).template
                reply = client.identify(probe, device="D0", mode="exact")
                assert reply["best"]["identity"] == "subject-7"
                verified = client.verify("subject-7", probe, device="D0")
                assert verified["decision"] == "accept"

                client.delete("subject-7", device="D0")
                gone = client.identify(probe, device="D0", mode="exact")
                assert gone["search"]["gallery_size"] == len(D0_SUBJECTS)
                assert all(
                    c["identity"] != "subject-7" for c in gone["candidates"]
                )


class TestObservability:
    def test_healthz_and_metrics_report_workers(
        self, gallery_root, tiny_collection, matcher
    ):
        server = _server(GalleryIndex(gallery_root), matcher, workers=2)
        with ServiceRunner(server) as (host, port):
            with ServiceClient(host, port) as client:
                health = client.healthz()
                assert health["workers"] == {
                    "configured": 2, "alive": 2, "degraded": False,
                }

                probe = tiny_collection.get(0, FINGER, "D0", 1).template
                client.identify(probe, device="D0", mode="exact")
                client.identify(probe, device="D0", mode="two_stage")

                families = parse_exposition(client.metrics())
                assert sample_value(
                    families, "repro_worker_pool_size", {"state": "alive"}
                ) == 2.0
                assert sample_value(
                    families, "repro_worker_degraded", {}
                ) == 0.0
                dispatches = sum(
                    sample_value(
                        families,
                        "repro_worker_dispatches_total",
                        {"worker": str(w)},
                    ) or 0.0
                    for w in (0, 1)
                )
                assert dispatches > 0
                shard_sizes = [
                    sample_value(
                        families, "repro_worker_shard_size", {"worker": str(w)}
                    )
                    for w in (0, 1)
                ]
                assert sum(shard_sizes) == len(D0_SUBJECTS) + len(D1_SUBJECTS)

                stats = client.stats()
                assert stats["workers"]["configured"] == 2
                assert stats["workers"]["respawns"] == {}

    def test_single_process_healthz_reports_zero_workers(
        self, gallery_root, matcher
    ):
        with ServiceRunner(
            _server(GalleryIndex(gallery_root), matcher)
        ) as (host, port):
            with ServiceClient(host, port) as client:
                health = client.healthz()
                assert health["workers"]["configured"] == 0
                assert health["workers"]["alive"] == 0


class TestTeardown:
    def test_shm_segment_unlinked_on_stop(self, gallery_root, matcher):
        server = _server(GalleryIndex(gallery_root), matcher, workers=2)
        with ServiceRunner(server) as (host, port):
            with ServiceClient(host, port) as client:
                client.wait_until_healthy()
                assert server.pool is not None
                name = server.pool._store.handle().name
                # Live while serving...
                block = shared_memory.SharedMemory(name=name)
                block.close()
        # ...and gone after stop: a leaked /dev/shm block would still
        # attach here.
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestChaos:
    """REPRO_FAULTS targeting worker task keys (``serve-w{id}-{op}-*``)."""

    def _chaos_env(self, monkeypatch, tmp_path, spec):
        monkeypatch.setenv("REPRO_FAULTS", spec)
        monkeypatch.setenv("REPRO_FAULTS_DIR", str(tmp_path / "ledger"))

    def test_crashed_worker_respawns_with_identical_results(
        self, gallery_root, tiny_collection, matcher, monkeypatch, tmp_path
    ):
        with ServiceRunner(
            _server(GalleryIndex(gallery_root), matcher)
        ) as (host, port):
            with ServiceClient(host, port) as client:
                control = _probe_replies(client, tiny_collection)

        # Worker 1 exits hard on its first ranked search; the pool must
        # requeue the in-flight fan-out, respawn, and answer bit-identically.
        self._chaos_env(monkeypatch, tmp_path, "crash@serve-w1-rank:1")
        server = _server(GalleryIndex(gallery_root), matcher, workers=2)
        with ServiceRunner(server) as (host, port):
            with ServiceClient(host, port) as client:
                chaotic = _probe_replies(client, tiny_collection)
                stats = client.stats()
                assert sum(stats["workers"]["respawns"].values()) >= 1
                assert client.healthz()["workers"]["alive"] == 2

        assert json.dumps(chaotic, sort_keys=True) == json.dumps(
            control, sort_keys=True
        )

    def test_stalled_worker_times_out_and_respawns(
        self, gallery_root, tiny_collection, matcher, monkeypatch, tmp_path
    ):
        probe = tiny_collection.get(1, FINGER, "D0", 1).template
        with ServiceRunner(
            _server(GalleryIndex(gallery_root), matcher)
        ) as (host, port):
            with ServiceClient(host, port) as client:
                control = _normalize(
                    client.verify("subject-1", probe, device="D0")
                )

        # The worker owning subject-1 stalls mid-/verify far past the
        # RPC deadline; the parent must declare it broken, respawn, and
        # retry the job.
        owner = shard_of("subject-1", 2)
        self._chaos_env(
            monkeypatch, tmp_path, f"hang@serve-w{owner}-score:1:30"
        )
        monkeypatch.setenv("REPRO_SERVE_WORKER_TIMEOUT_S", "1.0")
        server = _server(GalleryIndex(gallery_root), matcher, workers=2)
        with ServiceRunner(server) as (host, port):
            with ServiceClient(host, port) as client:
                stalled = _normalize(
                    client.verify("subject-1", probe, device="D0")
                )
                respawns = client.stats()["workers"]["respawns"]
                assert sum(respawns.values()) >= 1

        assert json.dumps(stalled, sort_keys=True) == json.dumps(
            control, sort_keys=True
        )

    def test_repeated_breakage_degrades_to_in_process(
        self, gallery_root, tiny_collection, matcher, monkeypatch, tmp_path
    ):
        # Every ranked search on worker 0 crashes and the respawn budget
        # is one: the pool must give up, not flap — and the server keeps
        # answering through the in-process fallback.
        self._chaos_env(monkeypatch, tmp_path, "crash@serve-w0-rank:9")
        monkeypatch.setenv("REPRO_SERVE_WORKER_RESPAWNS", "1")
        server = _server(GalleryIndex(gallery_root), matcher, workers=2)
        probe = tiny_collection.get(1, FINGER, "D0", 1).template
        with ServiceRunner(server) as (host, port):
            with ServiceClient(host, port) as client:
                reply = client.identify(probe, device="D0", mode="exact")
                assert reply["best"]["identity"] == "subject-1"
                health = client.healthz()
                assert health["workers"]["degraded"] is True
                assert health["workers"]["alive"] == 0
                # Still serving: the next request takes the fallback
                # path directly.
                again = client.identify(probe, device="D0", mode="exact")
                assert again["best"]["identity"] == "subject-1"
