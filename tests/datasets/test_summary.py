"""Collection summary statistics."""

import pytest

from repro.datasets.summary import (
    render_collection_summary,
    summarize_collection,
)


@pytest.fixture(scope="module")
def summaries(tiny_collection):
    return summarize_collection(tiny_collection)


class TestSummaries:
    def test_covers_all_devices(self, summaries):
        assert set(summaries) == {"D0", "D1", "D2", "D3", "D4"}

    def test_impression_counts(self, summaries, tiny_config):
        # 2 fingers x 2 sets per subject for every device (ink included:
        # rolled + slap).
        expected = tiny_config.n_subjects * 2 * 2
        for device in ("D0", "D1", "D2", "D3", "D4"):
            assert summaries[device].n_impressions == expected

    def test_minutiae_stats_consistent(self, summaries):
        for summary in summaries.values():
            assert summary.min_minutiae <= summary.mean_minutiae <= summary.max_minutiae

    def test_nfiq_distribution_sums(self, summaries):
        for summary in summaries.values():
            assert sum(summary.nfiq_distribution) == summary.n_impressions

    def test_mean_nfiq_in_range(self, summaries):
        for summary in summaries.values():
            assert 1.0 <= summary.mean_nfiq <= 5.0

    def test_ink_quality_worse_than_guardian(self, summaries):
        assert summaries["D4"].mean_nfiq >= summaries["D0"].mean_nfiq

    def test_degenerate_captures_rare(self, summaries):
        for summary in summaries.values():
            assert summary.degenerate_count <= 0.05 * summary.n_impressions


class TestRendering:
    def test_render_contains_devices_and_counts(self, summaries):
        text = render_collection_summary(summaries)
        assert "D0" in text and "D4" in text
        assert "Collection summary" in text

    def test_render_empty(self):
        assert "Collection summary" in render_collection_summary({})
