"""The WVU-2012 data-collection protocol.

Section III.A of the paper fixes the protocol this module reproduces:

* the order of fingerprint scanners is the same for all participants;
* each live-scan device collects **two sets** of fingerprints;
* ink-based prints are acquired **at the end**, "to not affect the
  quality of Live-scan fingerprints", and only **one** set exists;
* fingerprints are collected **without controlling the quality** —
  quality gating (the NIST reacquisition rule) is therefore *off* by
  default and available as an opt-in policy for the ablation benchmark.

A subject's ``presentation_index`` counts every presentation they make
across the whole session, so habituation accumulates through the fixed
device order exactly as it would for a real volunteer's one-hour visit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..runtime.errors import AcquisitionError
from ..runtime.rng import SeedTree
from ..runtime.telemetry import get_recorder
from ..quality.nfiq import recommend_reacquisition
from ..synthesis.population import Subject
from .base import Impression, Sensor
from .inkcard import InkCardSensor
from .optical import OpticalSensor
from .registry import DEVICE_ORDER, get_profile

#: Key addressing one impression in a collection.
ImpressionKey = Tuple[int, str, str, int]  # (subject_id, finger, device, set)


def build_sensor(device_id: str) -> Sensor:
    """Instantiate the right sensor class for a registry device."""
    profile = get_profile(device_id)
    if profile.family == "ink":
        return InkCardSensor(profile)
    return OpticalSensor(profile)


@dataclass(frozen=True)
class ProtocolSettings:
    """Behavioural switches of the collection session.

    Attributes
    ----------
    device_order:
        Devices in capture order; the paper used the same order for all
        participants, ink last.
    sets_per_livescan:
        Impression sets per live-scan device (paper: 2).
    quality_gating:
        Apply the NIST SP 800-76 reacquisition rule (paper: off).
    disable_device_signatures:
        Ablation switch: acquire every impression with a zero systematic
        warp, removing the between-device geometric differences while
        keeping all stochastic effects.  Under this ablation the
        cross-device genuine-score penalty should largely collapse —
        the causal claim of the study, made testable.
    """

    device_order: Tuple[str, ...] = DEVICE_ORDER
    sets_per_livescan: int = 2
    quality_gating: bool = False
    disable_device_signatures: bool = False

    def fingerprint(self) -> str:
        """Short stable token for cache keys."""
        parts = [
            "".join(d[1] for d in self.device_order),
            str(self.sets_per_livescan),
            "qg" if self.quality_gating else "nq",
            "nosig" if self.disable_device_signatures else "sig",
        ]
        return "-".join(parts)

    def sets_for(self, device_id: str) -> int:
        """How many impression sets this device yields.

        Ink cards are a single collection event, but the one physical
        card carries both a rolled print (set 0) and the slap-row print
        (set 1) of each finger — see :mod:`repro.sensors.inkcard`.
        """
        if get_profile(device_id).family == "ink":
            return 2
        return self.sets_per_livescan


class Collection:
    """All impressions of one study run, addressable by key."""

    def __init__(self) -> None:
        self._impressions: Dict[ImpressionKey, Impression] = {}

    def add(self, impression: Impression) -> None:
        """Register an impression; duplicate keys are a protocol bug."""
        key = (
            impression.subject_id,
            impression.finger_label,
            impression.device_id,
            impression.set_index,
        )
        if key in self._impressions:
            raise AcquisitionError(f"duplicate impression for key {key}")
        self._impressions[key] = impression

    def get(
        self, subject_id: int, finger: str, device_id: str, set_index: int
    ) -> Impression:
        """Fetch one impression; raises with the key when absent."""
        key = (subject_id, finger, device_id, set_index)
        try:
            return self._impressions[key]
        except KeyError:
            raise AcquisitionError(f"no impression for key {key}") from None

    def has(self, subject_id: int, finger: str, device_id: str, set_index: int) -> bool:
        """Whether an impression exists for this key."""
        return (subject_id, finger, device_id, set_index) in self._impressions

    def __len__(self) -> int:
        return len(self._impressions)

    def __iter__(self) -> Iterator[Impression]:
        return iter(self._impressions.values())

    def subjects(self) -> List[int]:
        """Sorted subject ids present in the collection."""
        return sorted({key[0] for key in self._impressions})

    def merge(self, other: "Collection") -> None:
        """Absorb ``other`` (used when assembling parallel shards)."""
        for impression in other:
            self.add(impression)

    def __eq__(self, other: object) -> bool:
        """Value equality: same keys mapping to equal impressions.

        Insertion order is ignored — a warm-loaded or parallel-assembled
        collection equals its serially built twin as long as every
        impression matches field-for-field (impressions are frozen
        dataclasses, so ``==`` compares templates, features and
        conditions exactly).
        """
        if not isinstance(other, Collection):
            return NotImplemented
        return self._impressions == other._impressions

    __hash__ = None  # mutable container


def acquire_subject_session(
    subject: Subject,
    sensors: Dict[str, Sensor],
    session_tree: SeedTree,
    finger_labels: Sequence[str],
    settings: ProtocolSettings = ProtocolSettings(),
) -> List[Impression]:
    """Run one participant through the full collection session.

    Parameters
    ----------
    subject:
        The participant.
    sensors:
        Device id → sensor; must cover ``settings.device_order``.
    session_tree:
        The subject's seed-tree node; every impression derives its own
        generator from it.
    finger_labels:
        Fingers captured in each set.
    settings:
        Protocol switches.
    """
    impressions: List[Impression] = []
    presentation_counter = 0
    for device_id in settings.device_order:
        if device_id not in sensors:
            raise AcquisitionError(f"no sensor instance for device {device_id!r}")
        sensor = sensors[device_id]
        for set_index in range(settings.sets_for(device_id)):
            for finger in finger_labels:
                impression = _acquire_with_policy(
                    sensor,
                    subject,
                    finger,
                    session_tree,
                    set_index,
                    presentation_counter,
                    settings,
                )
                impressions.append(impression)
                presentation_counter += 1
    return impressions


def _acquire_with_policy(
    sensor: Sensor,
    subject: Subject,
    finger: str,
    session_tree: SeedTree,
    set_index: int,
    presentation_counter: int,
    settings: ProtocolSettings,
) -> Impression:
    """Acquire one impression, optionally applying the NIST retry rule."""
    from .distortion import SmoothWarpField  # local import avoids a cycle at load

    signature_override = None
    if settings.disable_device_signatures:
        signature_override = SmoothWarpField(seed=0, magnitude_mm=0.0)
    recorder = get_recorder()
    attempts = 0
    best: Optional[Impression] = None
    while True:
        rng = session_tree.generator(
            "impression", sensor.device_id, finger, set_index, "attempt", attempts
        )
        impression = sensor.acquire(
            subject,
            finger,
            rng,
            set_index=set_index,
            presentation_index=presentation_counter + attempts,
            signature_override=signature_override,
        )
        if recorder.active:
            recorder.count("acquisition.attempts")
        if best is None or impression.nfiq < best.nfiq:
            best = impression
        if not settings.quality_gating:
            return impression
        if not recommend_reacquisition(impression.nfiq, attempts):
            if recorder.active and attempts:
                recorder.count("acquisition.reacquisitions", attempts)
            return best
        attempts += 1


__all__ = [
    "ProtocolSettings",
    "Collection",
    "ImpressionKey",
    "acquire_subject_session",
    "build_sensor",
]
