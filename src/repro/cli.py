"""Command-line interface.

``python -m repro <command>`` (or the ``repro`` console script) exposes
the library's main workflows without writing Python:

=============  ==========================================================
command        what it does
=============  ==========================================================
``info``       show the device registry (Table 1) and the configuration
``run``        regenerate study artifacts (tables/figures) at any scale
``warm``       pre-populate the content-addressed artifact store
``acquire``    synthesize a subject's impression → INCITS 378 file
``inspect``    decode an INCITS 378 file and summarize its minutiae
``match``      match two INCITS 378 files and print the score
``predict``    answer the paper's FNM-probability question for a pair
``stats``      pretty-print a run manifest written by ``run``
``serve``      run the online verification/identification HTTP server
``top``        live per-endpoint dashboard for a running ``serve``
``enroll``     add a template to a serving gallery (file or synthesized)
``keys``       mint/list/revoke API keys for ``serve --keys``
=============  ==========================================================

Every command honours ``REPRO_SUBJECTS`` / ``REPRO_WORKERS`` plus the
explicit ``--subjects`` / ``--workers`` flags (flags win).  Observability
switches: ``--log-level`` (or ``REPRO_LOG_LEVEL``) turns on JSON logs,
and ``run --manifest-out FILE`` enables telemetry for the run and writes
the span/counter manifest to ``FILE`` (see ``docs/observability.md``).

Failures print one ``repro: <ErrorType>: <message>`` line to stderr and
exit with a family-specific nonzero code (see :data:`EXIT_CODE_BY_ERROR`)
so scripts and CI can branch on *what* failed without parsing
tracebacks; ``run`` additionally offers ``--resume`` (continue an
interrupted run from its chunk checkpoints) and ``--no-fail-fast``
(record permanently failed batches as skips instead of aborting) — see
``docs/robustness.md``.
"""

from __future__ import annotations

import argparse
import functools
import os
import sys

import numpy as np
from pathlib import Path
from typing import List, Optional

from . import __version__
from .api import StudyConfig
from .runtime.errors import (
    AcquisitionError,
    CacheError,
    CalibrationError,
    ConfigurationError,
    MatcherError,
    PermanentError,
    ReproError,
    SynthesisError,
    TemplateFormatError,
    TransientError,
)

#: Exit code per failure family; first match wins, so subclasses must
#: precede their bases (every code here is distinct from 0 and from
#: argparse's own 2-adjacent usage errors only by the stderr line).
EXIT_CODE_BY_ERROR = (
    (ConfigurationError, 2),
    (TemplateFormatError, 3),
    (MatcherError, 4),
    (AcquisitionError, 5),
    (SynthesisError, 5),
    (CalibrationError, 6),
    (CacheError, 7),
    (PermanentError, 8),
    (TransientError, 9),
)

#: Exit code of a :class:`ReproError` outside every family above.
GENERIC_ERROR_EXIT = 10


def exit_code_for(exc: ReproError) -> int:
    """The process exit code one library failure maps to."""
    for error_type, code in EXIT_CODE_BY_ERROR:
        if isinstance(exc, error_type):
            return code
    return GENERIC_ERROR_EXIT

#: Artifact names accepted by ``run --only``.
ARTIFACTS = (
    "fig1", "table1", "table3", "fig2", "fig3", "fig4",
    "table4", "table5", "table6", "fig5",
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Interoperability in Fingerprint Recognition: "
            "A Large-Scale Empirical Study' (DSN 2013)."
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument(
        "--log-level", default=None,
        choices=("debug", "info", "warning", "error"),
        help="emit structured JSON logs to stderr at this level "
             "(default: REPRO_LOG_LEVEL, else off)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="show devices (Table 1) and configuration")

    run = sub.add_parser("run", help="regenerate study tables and figures")
    run.add_argument("--subjects", type=int, default=None,
                     help="population size (default 48; paper scale 494)")
    run.add_argument("--workers", type=int, default=None,
                     help="process-pool width for score generation")
    run.add_argument("--seed", type=int, default=None, help="master seed")
    run.add_argument("--cache-dir", default=".repro_cache",
                     help="score cache directory ('' disables caching)")
    run.add_argument("--artifact-dir", default=None,
                     help="content-addressed artifact store for acquired "
                          "impressions; warm runs skip acquisition entirely "
                          "(default: off; '' also disables)")
    run.add_argument("--only", choices=ARTIFACTS, action="append",
                     help="limit output to specific artifacts (repeatable)")
    run.add_argument("--out", default=None,
                     help="also write each artifact to <OUT>/<name>.txt")
    run.add_argument("--manifest-out", default=None,
                     help="enable telemetry and write the run manifest "
                          "(spans, counters, cache stats) to this JSON file")
    run.add_argument("--resume", action="store_true",
                     help="resume an interrupted run from its chunk "
                          "checkpoints (requires the same --cache-dir; "
                          "a completed run makes this a no-op)")
    run.add_argument("--fail-fast", dest="fail_fast", action="store_true",
                     default=True,
                     help="abort on the first permanently failed batch "
                          "(default)")
    run.add_argument("--no-fail-fast", dest="fail_fast",
                     action="store_false",
                     help="skip permanently failed batches instead of "
                          "aborting; skips are counted in the manifest "
                          "and the affected score rows are absent")

    stats = sub.add_parser(
        "stats", help="summarize a run manifest written by 'run --manifest-out'"
    )
    stats.add_argument("manifest", help="the manifest .json file")

    warm = sub.add_parser(
        "warm",
        help="pre-populate the artifact store so later runs skip acquisition",
    )
    warm.add_argument("--subjects", type=int, default=None,
                      help="population size (default 48; paper scale 494)")
    warm.add_argument("--workers", type=int, default=None,
                      help="process-pool width for parallel acquisition")
    warm.add_argument("--seed", type=int, default=None, help="master seed")
    warm.add_argument("--artifact-dir", default=".repro_artifacts",
                      help="artifact store directory to populate")
    warm.add_argument("--clear", action="store_true",
                      help="drop every existing entry before warming")

    acquire = sub.add_parser(
        "acquire", help="synthesize an impression and write an INCITS 378 file"
    )
    acquire.add_argument("--subject", type=int, default=0, help="subject id")
    acquire.add_argument("--device", default="D0", help="capture device (D0..D4)")
    acquire.add_argument("--set", dest="set_index", type=int, default=0,
                         choices=(0, 1), help="impression set")
    acquire.add_argument("--finger", default="right_index",
                         choices=("right_index", "right_middle"))
    acquire.add_argument("--seed", type=int, default=None, help="master seed")
    acquire.add_argument("--out", required=True, help="output .fmr path")

    inspect = sub.add_parser("inspect", help="decode and summarize an INCITS file")
    inspect.add_argument("path", help="the .fmr file")

    match = sub.add_parser("match", help="match two INCITS 378 template files")
    match.add_argument("probe", help="probe .fmr file")
    match.add_argument("gallery", help="gallery .fmr file")
    match.add_argument("--matcher", default="bioengine",
                       choices=("bioengine", "ridgecount"))

    render = sub.add_parser(
        "render", help="render a subject's finger as a PGM ridge image"
    )
    render.add_argument("--subject", type=int, default=0)
    render.add_argument("--finger", default="right_index",
                        choices=("right_index", "right_middle"))
    render.add_argument("--seed", type=int, default=None,
                        help="master seed (selects the subject's identity)")
    render.add_argument("--render-seed", type=int, default=0,
                        help="impression seed (speckle/noise); vary this to "
                             "get a second impression of the same finger")
    render.add_argument("--moisture", type=float, default=0.5,
                        help="0=soaked, 0.5=ideal, 1=bone dry")
    render.add_argument("--pixels-per-mm", type=float, default=8.0)
    render.add_argument("--out", required=True, help="output .pgm path")

    extract = sub.add_parser(
        "extract", help="extract a minutiae template from a PGM ridge image"
    )
    extract.add_argument("image", help="input .pgm ridge image")
    extract.add_argument("--pixels-per-mm", type=float, default=8.0)
    extract.add_argument("--out", required=True, help="output .fmr path")

    dataset = sub.add_parser(
        "dataset", help="acquire a collection and print its summary statistics"
    )
    dataset.add_argument("--subjects", type=int, default=None)
    dataset.add_argument("--workers", type=int, default=None)
    dataset.add_argument("--seed", type=int, default=None)

    predict = sub.add_parser(
        "predict",
        help="P(false non-match) for a (gallery device, probe device) pair",
    )
    predict.add_argument("gallery_device", help="enrollment device (D0..D4)")
    predict.add_argument("probe_device", help="verification device (D0..D4)")
    predict.add_argument("--subjects", type=int, default=None)
    predict.add_argument("--workers", type=int, default=None)
    predict.add_argument("--fmr", type=float, default=1e-3,
                         help="fixed FMR of the operating point")
    predict.add_argument("--cache-dir", default=".repro_cache")

    serve = sub.add_parser(
        "serve", help="run the online verification/identification server"
    )
    serve.add_argument("--gallery-dir", default=".repro_gallery",
                       help="persistent gallery root (per-device shards)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8799,
                       help="listen port (0 binds an ephemeral port)")
    serve.add_argument("--matcher", default="bioengine",
                       choices=("bioengine", "ridgecount"))
    serve.add_argument("--threshold", type=float, default=None,
                       help="accept/reject score threshold "
                            "(default: REPRO_SERVE_THRESHOLD, else 7.5)")
    serve.add_argument("--max-nfiq", type=int, default=4,
                       help="worst NFIQ level accepted at enrollment (1-5)")
    serve.add_argument("--max-batch", type=int, default=None,
                       help="micro-batch size cap (REPRO_SERVE_MAX_BATCH)")
    serve.add_argument("--max-wait-ms", type=float, default=None,
                       help="batch coalescing window "
                            "(REPRO_SERVE_MAX_WAIT_MS)")
    serve.add_argument("--queue-depth", type=int, default=None,
                       help="admission queue bound "
                            "(REPRO_SERVE_QUEUE_DEPTH); overflow answers 503")
    serve.add_argument("--no-batching", action="store_true",
                       help="disable cross-request micro-batching "
                            "(REPRO_SERVE_BATCHING=0)")
    serve.add_argument("--manifest-out", default=None,
                       help="enable telemetry and write a run manifest "
                            "(with the service rollup) on shutdown")
    serve.add_argument("--reqlog", default=None,
                       help="append one JSON line per request to this file "
                            "(REPRO_SERVE_REQLOG; size-rotated)")
    serve.add_argument("--slow-ms", type=float, default=None,
                       help="log requests slower than this at WARNING "
                            "with their full span timeline "
                            "(REPRO_SERVE_SLOW_MS)")
    serve.add_argument("--no-tracing", action="store_true",
                       help="disable per-request TraceContext propagation "
                            "(REPRO_SERVE_TRACING=0)")
    serve.add_argument("--identify-mode", default=None,
                       choices=("exact", "two_stage"),
                       help="default /identify search path: exhaustive "
                            "matcher or descriptor prefilter + rescoring "
                            "(REPRO_IDENTIFY_MODE, else exact)")
    serve.add_argument("--workers", type=int, default=None,
                       help="shard the gallery across N matcher worker "
                            "processes (0/1 keeps the in-process path; "
                            "default honours REPRO_SERVE_WORKERS)")
    serve.add_argument("--follow", default=None, metavar="WAL_DIR",
                       help="run as a read-only follower replica tailing "
                            "this write-ahead log directory (typically the "
                            "primary's <gallery-dir>/__wal__); writes are "
                            "rejected with the read_only error code")
    serve.add_argument("--candidate-k", type=int, default=None,
                       help="two-stage prefilter shortlist size "
                            "(REPRO_IDENTIFY_CANDIDATES, else 32)")
    serve.add_argument("--keys", default=None, metavar="KEYFILE",
                       help="enforce keyed access from this JSON keyfile "
                            "(REPRO_SERVE_KEYS); enables per-principal "
                            "rate limits and quotas")
    serve.add_argument("--no-auth", action="store_true",
                       help="serve open even when REPRO_SERVE_KEYS is set")

    keys = sub.add_parser(
        "keys", help="manage API keyfiles for repro serve --keys"
    )
    keys_sub = keys.add_subparsers(dest="keys_command", required=True)
    keys_generate = keys_sub.add_parser(
        "generate", help="mint a key and add its principal to a keyfile"
    )
    keys_generate.add_argument("--keys", required=True, metavar="KEYFILE",
                               help="keyfile to create or extend")
    keys_generate.add_argument("--principal", required=True,
                               help="caller name for stats/reqlog/limits")
    keys_generate.add_argument("--roles", default="read",
                               help="comma-separated subset of "
                                    "read,write,admin (default: read)")
    keys_list = keys_sub.add_parser(
        "list", help="show a keyfile's principals (never the secrets)"
    )
    keys_list.add_argument("--keys", required=True, metavar="KEYFILE")
    keys_revoke = keys_sub.add_parser(
        "revoke", help="remove one principal's entry from a keyfile"
    )
    keys_revoke.add_argument("--keys", required=True, metavar="KEYFILE")
    keys_revoke.add_argument("--principal", required=True)

    top = sub.add_parser(
        "top", help="live dashboard for a running repro serve instance"
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=8799)
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between refreshes")
    top.add_argument("--iterations", type=int, default=None,
                     help="stop after N frames (default: run until Ctrl-C)")
    top.add_argument("--no-clear", action="store_true",
                     help="append frames instead of redrawing in place")

    enroll = sub.add_parser(
        "enroll", help="enroll a template into a serving gallery"
    )
    enroll.add_argument("--gallery-dir", default=".repro_gallery",
                        help="persistent gallery root (created if missing)")
    enroll.add_argument("--identity", default=None,
                        help="identity to enroll under (default: template "
                             "file stem, or subject-<N> when synthesizing)")
    enroll.add_argument("--device", default=None,
                        help="gallery device shard (default: the capture "
                             "device when synthesizing, else 'default')")
    enroll.add_argument("--template", default=None,
                        help="INCITS 378 .fmr file to enroll; omit to "
                             "synthesize one with --subject/--capture-device")
    enroll.add_argument("--subject", type=int, default=0,
                        help="subject id for the synthesized path")
    enroll.add_argument("--capture-device", default="D0",
                        help="capture device for the synthesized path")
    enroll.add_argument("--set", dest="set_index", type=int, default=0,
                        choices=(0, 1), help="impression set")
    enroll.add_argument("--finger", default="right_index",
                        choices=("right_index", "right_middle"))
    enroll.add_argument("--seed", type=int, default=None, help="master seed")
    enroll.add_argument("--max-nfiq", type=int, default=4,
                        help="worst NFIQ level accepted (1-5)")
    return parser


def _config_from_args(args, default_subjects: int = 48) -> StudyConfig:
    defaults = dict(n_subjects=default_subjects, n_workers=4)
    config = StudyConfig.from_environment(**defaults)
    overrides = {}
    if getattr(args, "subjects", None) is not None:
        overrides["n_subjects"] = args.subjects
    if getattr(args, "workers", None) is not None:
        overrides["n_workers"] = args.workers
    if getattr(args, "seed", None) is not None:
        overrides["master_seed"] = args.seed
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is not None:
        overrides["cache_dir"] = cache_dir or None
    artifact_dir = getattr(args, "artifact_dir", None)
    if artifact_dir is not None:
        overrides["artifact_dir"] = artifact_dir or None
    return config.replace(**overrides) if overrides else config


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def cmd_info(args, out) -> int:
    """`repro info`: device registry and default configuration."""
    from .api import DEVICE_PROFILES, render_table1

    print(f"repro {__version__}", file=out)
    print(render_table1(), file=out)
    ink = DEVICE_PROFILES["D4"]
    print(f"D4     {ink.model:<42}{ink.resolution_dpi:>5}", file=out)
    config = StudyConfig.from_environment()
    print(f"\ndefault config: {config.describe()}", file=out)
    return 0


def cmd_run(args, out) -> int:
    """`repro run`: regenerate study tables/figures at the chosen scale."""
    from .api import (
        DEVICE_ORDER,
        InteroperabilityStudy,
        kendall_matrix,
        low_score_quality_surface,
        quality_filtered_fnmr_matrix,
        render_figure1,
        render_figure4,
        render_figure5,
        render_fnmr_matrix,
        render_score_histograms,
        render_table1,
        render_table3,
        render_table4,
    )

    from .api import disable_telemetry, enable_telemetry, get_recorder

    config = _config_from_args(args)
    wanted = set(args.only) if args.only else set(ARTIFACTS)
    print(config.describe(), file=out)
    recorder = enable_telemetry() if args.manifest_out else get_recorder()
    progress_factory = None
    if sys.stderr.isatty():
        from .api import ProgressReporter

        progress_factory = lambda total, label: ProgressReporter(  # noqa: E731
            total=total, label=label
        )
    study = InteroperabilityStudy(
        config,
        progress_factory=progress_factory,
        resume=args.resume,
        fail_fast=args.fail_fast,
    )
    sets = study.score_sets()
    rule = "=" * 72
    out_dir = Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)

    def emit(name: str, render) -> None:
        if name not in wanted:
            return
        with recorder.span(f"analysis.{name}"):
            text = render()
        print(rule, file=out)
        print(text, file=out)
        if out_dir is not None:
            (out_dir / f"{name}.txt").write_text(text + "\n")

    def fig4_text() -> str:
        per_probe = {
            probe: study.genuine_scores("D3", probe).scores
            for probe in DEVICE_ORDER
        }
        return render_figure4(per_probe, gallery_device="D3")

    emit("fig1", lambda: render_figure1(study.demographics()))
    emit("table1", render_table1)
    emit("table3", lambda: render_table3(sets, config.n_subjects))
    emit("fig2", lambda: render_score_histograms(
        sets["DMG"].for_pair("D0", "D0"),
        sets["DMI"].for_pair("D0", "D0"),
        "Figure 2: DMG vs DMI, Cross Match Guardian R2",
    ))
    emit("fig3", lambda: render_score_histograms(
        sets["DDMG"].for_pair("D0", "D1"),
        sets["DDMI"].for_pair("D0", "D1"),
        "Figure 3: DDMG vs DDMI, Guardian R2 vs digID Mini",
    ))
    emit("fig4", fig4_text)
    emit("table4", lambda: render_table4(kendall_matrix(study)))
    emit("table5", lambda: render_fnmr_matrix(
        study.fnmr_matrix(1e-4), "Table 5: FNMR at fixed FMR of 0.01%"
    ))
    emit("table6", lambda: render_fnmr_matrix(
        quality_filtered_fnmr_matrix(study),
        "Table 6: FNMR at fixed FMR of 0.1%, NFIQ < 3",
    ))
    emit("fig5", lambda: render_figure5(
        low_score_quality_surface(study, cross_device=False),
        low_score_quality_surface(study, cross_device=True),
    ))

    if args.manifest_out:
        from .api import RunManifest

        manifest = RunManifest.from_recorder(recorder, config)
        target = manifest.write(args.manifest_out)
        print(f"run manifest written to {target}", file=out)
        disable_telemetry()
    return 0


def cmd_acquire(args, out) -> int:
    """`repro acquire`: synthesize an impression into an INCITS 378 file."""
    from .api import (
        build_sensor,
        encode,
        FINGER_POSITION_CODES,
        Population,
        RecordMetadata,
    )

    config = _config_from_args(args, default_subjects=max(args.subject + 1, 2))
    if args.subject >= config.n_subjects:
        config = config.replace(n_subjects=args.subject + 1)
    population = Population(config)
    subject = population.subject(args.subject)
    sensor = build_sensor(args.device)
    from .api import SeedTree

    rng = SeedTree(config.master_seed).child("session", args.subject).generator(
        "impression", args.device, args.finger, args.set_index, "attempt", 0
    )
    impression = sensor.acquire(
        subject, args.finger, rng, set_index=args.set_index
    )
    metadata = RecordMetadata(
        capture_device_id=int(args.device[1]),
        finger_position=FINGER_POSITION_CODES[args.finger],
        finger_quality=max(1, 110 - impression.nfiq * 20),
    )
    Path(args.out).write_bytes(encode(impression.template, metadata))
    print(
        f"wrote {args.out}: subject {args.subject}, {args.device}, "
        f"{args.finger}, set {args.set_index} — "
        f"{len(impression.template)} minutiae, NFIQ {impression.nfiq}",
        file=out,
    )
    return 0


def cmd_inspect(args, out) -> int:
    """`repro inspect`: decode an INCITS 378 record and summarize it."""
    from .api import decode

    buffer = Path(args.path).read_bytes()
    template, metadata = decode(buffer)
    print(f"{args.path}: INCITS 378 record, {len(buffer)} bytes", file=out)
    print(
        f"  image {template.width_px} x {template.height_px} px @ "
        f"{template.resolution_dpi} dpi", file=out,
    )
    print(
        f"  finger position {metadata.finger_position}, "
        f"device id {metadata.capture_device_id}, "
        f"quality {metadata.finger_quality}", file=out,
    )
    print(f"  {len(template)} minutiae "
          f"({int((template.kinds() == 1).sum())} endings, "
          f"{int((template.kinds() == 2).sum())} bifurcations)", file=out)
    if len(template):
        qualities = template.qualities()
        print(f"  minutia quality: min {qualities.min()} "
              f"mean {qualities.mean():.0f} max {qualities.max()}", file=out)
    return 0


def cmd_match(args, out) -> int:
    """`repro match`: score two INCITS 378 template files."""
    from .api import build_matcher, decode

    probe, __ = decode(Path(args.probe).read_bytes())
    gallery, __ = decode(Path(args.gallery).read_bytes())
    matcher = build_matcher(args.matcher)
    score = matcher.match(probe, gallery)
    print(f"similarity score: {score:.3f}", file=out)
    verdict = "likely same finger" if score >= 7.5 else "likely different fingers"
    print(f"verdict at the study's operating threshold (7.5): {verdict}", file=out)
    return 0


def cmd_predict(args, out) -> int:
    """`repro predict`: the paper's FNM-probability question for a pair."""
    from .api import FnmrPredictor, InteroperabilityStudy

    config = _config_from_args(args)
    study = InteroperabilityStudy(config)
    predictor = FnmrPredictor().fit_from_study(study, target_fmr=args.fmr)
    prediction = predictor.predict(args.gallery_device, args.probe_device)
    print(
        f"P(false non-match | enroll {args.gallery_device}, "
        f"verify {args.probe_device}) = {prediction.probability:.4f}",
        file=out,
    )
    print(
        f"95% credible interval [{prediction.low:.4f}, {prediction.high:.4f}] "
        f"from {prediction.failures}/{prediction.trials} observed failures "
        f"at FMR {args.fmr:g}",
        file=out,
    )
    return 0


def cmd_render(args, out) -> int:
    """`repro render`: synthesize a finger and write its ridge image."""
    from .api import (
        Population,
        render_finger,
        RenderSettings,
        to_uint8,
        write_pgm,
    )

    config = _config_from_args(args, default_subjects=max(args.subject + 1, 2))
    if args.subject >= config.n_subjects:
        config = config.replace(n_subjects=args.subject + 1)
    finger = Population(config).subject(args.subject).finger(args.finger)
    rendered = render_finger(
        finger,
        RenderSettings(
            pixels_per_mm=args.pixels_per_mm,
            moisture=args.moisture,
            noise_std=0.03,
            seed=args.render_seed,
        ),
    )
    write_pgm(to_uint8(rendered.image), Path(args.out))
    print(
        f"wrote {args.out}: subject {args.subject} {args.finger} "
        f"({finger.pattern.value}, {finger.n_minutiae} minutiae planted, "
        f"{rendered.image.shape[1]}x{rendered.image.shape[0]} px)",
        file=out,
    )
    return 0


def cmd_extract(args, out) -> int:
    """`repro extract`: image-domain minutiae extraction to INCITS 378."""
    from .api import encode, extract_template, read_pgm

    image = read_pgm(Path(args.image)).astype(np.float64) / 255.0
    template = extract_template(image, pixels_per_mm=args.pixels_per_mm)
    Path(args.out).write_bytes(encode(template))
    print(
        f"wrote {args.out}: {len(template)} minutiae extracted from {args.image}",
        file=out,
    )
    return 0


def cmd_dataset(args, out) -> int:
    """`repro dataset`: collection summary + habituation analysis."""
    from .api import (
        build_collection,
        render_collection_summary,
        render_habituation,
        summarize_collection,
    )

    config = _config_from_args(args, default_subjects=24)
    print(config.describe(), file=out)
    collection = build_collection(config)
    print(render_collection_summary(summarize_collection(collection)), file=out)
    print("", file=out)
    print(render_habituation(collection), file=out)
    return 0


def cmd_warm(args, out) -> int:
    """`repro warm`: pre-populate the artifact store for a configuration."""
    from .api import ArtifactStore, ProgressReporter, warm_artifacts

    config = _config_from_args(args)
    print(config.describe(), file=out)
    store = ArtifactStore(config.artifact_dir)
    if args.clear:
        removed = store.clear()
        print(f"cleared {removed} artifact entries", file=out)
    progress = None
    if sys.stderr.isatty():
        progress = ProgressReporter(total=config.n_subjects, label="warm")
    stats = warm_artifacts(config, progress=progress, artifacts=store)
    print(f"artifact store at {store.root}:", file=out)
    for tier, tier_stats in stats.items():
        print(
            f"  {tier:<12}{tier_stats['entries']:>8} entries"
            f"{tier_stats['bytes']:>14,} bytes",
            file=out,
        )
    return 0


def cmd_stats(args, out) -> int:
    """`repro stats`: validate and pretty-print a run manifest."""
    from .api import ConfigurationError, render_manifest, RunManifest

    try:
        manifest = RunManifest.load(args.manifest)
    except (OSError, ValueError) as exc:
        raise ConfigurationError(f"cannot read manifest: {exc}") from exc
    print(render_manifest(manifest), file=out)
    return 0


def _synthesize_template(args):
    """Acquire one synthetic impression (the ``enroll`` fallback path)."""
    from .api import build_sensor, Population, SeedTree

    config = _config_from_args(args, default_subjects=max(args.subject + 1, 2))
    if args.subject >= config.n_subjects:
        config = config.replace(n_subjects=args.subject + 1)
    subject = Population(config).subject(args.subject)
    sensor = build_sensor(args.capture_device)
    rng = SeedTree(config.master_seed).child("session", args.subject).generator(
        "impression", args.capture_device, args.finger, args.set_index,
        "attempt", 0,
    )
    return sensor.acquire(subject, args.finger, rng, set_index=args.set_index)


def cmd_enroll(args, out) -> int:
    """`repro enroll`: add one template to a persistent serving gallery."""
    from .api import decode
    from .service import GalleryIndex

    if args.template is not None:
        template, _metadata = decode(Path(args.template).read_bytes())
        identity = args.identity or Path(args.template).stem
        device = args.device or "default"
    else:
        template = _synthesize_template(args).template
        identity = args.identity or f"subject-{args.subject}"
        device = args.device or args.capture_device
    # Context-managed so the deferred descriptor-matrix flush and the
    # WAL checkpoint land before the process exits.
    with GalleryIndex(
        Path(args.gallery_dir), max_nfiq_level=args.max_nfiq
    ) as gallery:
        record = gallery.enroll(identity, template, device=device)
        enrolled = len(gallery)
    print(
        f"enrolled {record.identity!r} on device {record.device}: "
        f"{len(record.template)} minutiae, NFIQ {record.nfiq_level} "
        f"(utility {record.nfiq_utility:.3f}); "
        f"gallery now holds {enrolled} enrollments at {args.gallery_dir}",
        file=out,
    )
    return 0


def cmd_top(args, out) -> int:
    """`repro top`: live per-endpoint rates for a running server."""
    from .service import run_top

    return run_top(
        args.host,
        args.port,
        interval_s=args.interval,
        iterations=args.iterations,
        out=out,
        clear=not args.no_clear,
    )


def cmd_serve(args, out) -> int:
    """`repro serve`: host the gallery behind the async matching server."""
    import asyncio
    import signal

    from .api import build_matcher, disable_telemetry, enable_telemetry
    from .service import (
        BatchingConfig,
        GalleryIndex,
        RequestLog,
        VerificationServer,
    )

    from .service.auth import ApiKeyAuthenticator

    recorder = enable_telemetry() if args.manifest_out else None
    if args.no_auth:
        # False (not None) forces auth off even with REPRO_SERVE_KEYS set.
        auth: object = False
    elif args.keys is not None:
        auth = ApiKeyAuthenticator(Path(args.keys))
    else:
        auth = None  # the server falls back to REPRO_SERVE_KEYS
    overrides: dict = {}
    if args.max_batch is not None:
        overrides["max_batch"] = args.max_batch
    if args.max_wait_ms is not None:
        overrides["max_wait_ms"] = args.max_wait_ms
    if args.queue_depth is not None:
        overrides["queue_depth"] = args.queue_depth
    if args.no_batching:
        overrides["enabled"] = False
    batching = BatchingConfig.from_environment(**overrides)
    gallery = GalleryIndex(
        Path(args.gallery_dir),
        max_nfiq_level=args.max_nfiq,
        readonly=args.follow is not None,
    )
    reqlog = (
        RequestLog(args.reqlog) if args.reqlog
        else RequestLog.from_environment()
    )
    server = VerificationServer(
        gallery,
        matcher=build_matcher(args.matcher),
        host=args.host,
        port=args.port,
        threshold=args.threshold,
        batching=batching,
        reqlog=reqlog,
        tracing=False if args.no_tracing else None,
        slow_ms=args.slow_ms,
        identify_mode=args.identify_mode,
        candidate_k=args.candidate_k,
        workers=args.workers,
        matcher_factory=functools.partial(build_matcher, args.matcher),
        follow=args.follow,
        auth=auth,
    )

    async def _run() -> None:
        await server.start()
        host, port = server.address
        print(
            f"repro service listening on http://{host}:{port} "
            f"({server.role}, "
            f"{len(gallery)} enrolled, threshold {server.threshold}, "
            f"batching {'on' if batching.enabled else 'off'}, "
            f"identify {server.identify_mode}, "
            f"workers {server.pool.workers if server.pool else 0}, "
            f"tracing {'on' if server.tracing else 'off'}, "
            f"auth {'on' if server.auth is not None else 'off'}"
            + (f", reqlog {server.reqlog.path}" if server.reqlog else "")
            + ")",
            file=out, flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        serving = loop.create_task(server.serve_forever())
        await stop.wait()
        serving.cancel()
        await asyncio.gather(serving, return_exceptions=True)
        await server.stop()

    try:
        asyncio.run(_run())
    finally:
        if args.manifest_out and recorder is not None:
            from .api import RunManifest

            config = StudyConfig.from_environment()
            target = RunManifest.from_recorder(recorder, config).write(
                args.manifest_out
            )
            print(f"run manifest written to {target}", file=out)
            disable_telemetry()
    return 0


def cmd_keys(args, out) -> int:
    """`repro keys`: mint, list, and revoke API-keyfile entries.

    The secret is printed exactly once, at generation time; every other
    view shows only the ``rk_`` prefix.  Writes go through the same
    atomic replace the hot-reloading server expects, so rotating a live
    keyfile is safe.
    """
    from .service.auth import (
        ROLES,
        generate_key,
        load_keyfile,
        write_keyfile,
    )

    path = Path(args.keys)
    entries = load_keyfile(path)
    if args.keys_command == "generate":
        roles = [r.strip() for r in args.roles.split(",") if r.strip()]
        if not roles or any(role not in ROLES for role in roles):
            raise ConfigurationError(
                f"--roles must be a comma-separated subset of {ROLES}"
            )
        if any(e["principal"] == args.principal for e in entries):
            raise ConfigurationError(
                f"principal {args.principal!r} already exists in {path}; "
                "revoke it first to rotate its key"
            )
        key = generate_key()
        entries.append(
            {"principal": args.principal, "key": key, "roles": roles,
             "limits": {}}
        )
        write_keyfile(path, entries)
        print(f"{args.principal}: {key}", file=out)
        print(
            f"added {args.principal!r} ({','.join(roles)}) to {path}; "
            "the key is shown only this once",
            file=out,
        )
        return 0
    if args.keys_command == "list":
        if not entries:
            print(f"{path}: no keys", file=out)
            return 0
        for entry in entries:
            key = entry["key"]
            preview = key[:6] + "…" if len(key) > 6 else "…"
            print(
                f"{entry['principal']}  roles={','.join(entry['roles'])}  "
                f"key={preview}"
                + (f"  limits={entry['limits']}" if entry["limits"] else ""),
                file=out,
            )
        return 0
    # revoke
    remaining = [e for e in entries if e["principal"] != args.principal]
    if len(remaining) == len(entries):
        raise ConfigurationError(
            f"principal {args.principal!r} not found in {path}"
        )
    write_keyfile(path, remaining)
    print(
        f"revoked {args.principal!r} from {path} "
        f"({len(remaining)} remaining)",
        file=out,
    )
    return 0


_COMMANDS = {
    "info": cmd_info,
    "run": cmd_run,
    "acquire": cmd_acquire,
    "inspect": cmd_inspect,
    "match": cmd_match,
    "render": cmd_render,
    "extract": cmd_extract,
    "dataset": cmd_dataset,
    "predict": cmd_predict,
    "stats": cmd_stats,
    "warm": cmd_warm,
    "serve": cmd_serve,
    "top": cmd_top,
    "enroll": cmd_enroll,
    "keys": cmd_keys,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    if out is None:
        out = sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level or os.environ.get("REPRO_LOG_LEVEL"):
        from .api import configure_logging

        configure_logging(args.log_level)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as exc:
        # One diagnostic line, one family-specific exit code — scripts
        # branch on $?, humans read stderr, nobody parses a traceback.
        print(f"repro: {type(exc).__name__}: {exc}", file=sys.stderr)
        return exit_code_for(exc)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
