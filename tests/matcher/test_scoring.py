"""Score calibration properties."""

import numpy as np
import pytest

from repro.matcher.pairing import PairingResult
from repro.matcher.scoring import (
    CHANCE_PAIR_FLOOR,
    MIN_PAIRS_FOR_IDENTITY,
    SCORE_SCALE,
    compute_score,
)


def _pairing(n_matched, overlap_a, overlap_b, residual=0.2, angle_res=0.1):
    pairs = np.column_stack([np.arange(n_matched), np.arange(n_matched)])
    return PairingResult(
        pairs=pairs.astype(np.int64),
        residuals_mm=np.full(n_matched, residual),
        angle_residuals_rad=np.full(n_matched, angle_res),
        n_overlap_a=overlap_a,
        n_overlap_b=overlap_b,
    )


def _qualities(n, value=70):
    return np.full(n, value, dtype=np.int64)


class TestScoreShape:
    def test_strong_genuine_scores_high(self):
        result = compute_score(_pairing(24, 28, 28), _qualities(30), _qualities(30))
        assert result.score > 12

    def test_chance_agreement_scores_low(self):
        result = compute_score(_pairing(4, 20, 20), _qualities(25), _qualities(25))
        assert result.score < 4

    def test_below_identity_floor(self):
        result = compute_score(
            _pairing(MIN_PAIRS_FOR_IDENTITY - 1, 20, 20),
            _qualities(25), _qualities(25),
        )
        assert result.score < 2.5
        assert result.match_ratio == 0.0

    def test_monotone_in_matched_count(self):
        scores = [
            compute_score(_pairing(n, 30, 30), _qualities(35), _qualities(35)).score
            for n in (6, 12, 18, 24)
        ]
        assert scores == sorted(scores)

    def test_never_exceeds_scale(self):
        result = compute_score(
            _pairing(40, 40, 40, residual=0.0, angle_res=0.0),
            _qualities(45, 100), _qualities(45, 100),
        )
        assert result.score <= SCORE_SCALE

    def test_tight_residuals_beat_loose(self):
        tight = compute_score(
            _pairing(15, 25, 25, residual=0.1), _qualities(30), _qualities(30)
        )
        loose = compute_score(
            _pairing(15, 25, 25, residual=0.7), _qualities(30), _qualities(30)
        )
        assert tight.score > loose.score

    def test_quality_weighting(self):
        good = compute_score(
            _pairing(15, 25, 25), _qualities(30, 95), _qualities(30, 95)
        )
        bad = compute_score(
            _pairing(15, 25, 25), _qualities(30, 15), _qualities(30, 15)
        )
        assert good.score > bad.score

    def test_overlap_floor_deflates_small_overlap_flukes(self):
        # 6 matches in a tiny accidental overlap must not look like 6
        # matches in a well-covered one.
        fluke = compute_score(_pairing(6, 7, 7), _qualities(10), _qualities(10))
        solid = compute_score(_pairing(20, 24, 24), _qualities(30), _qualities(30))
        assert fluke.score < solid.score / 2

    def test_chance_floor_subtracted(self):
        result = compute_score(_pairing(10, 20, 20), _qualities(25), _qualities(25))
        expected_ratio = ((10 - CHANCE_PAIR_FLOOR) ** 2) / (20 * 20)
        assert result.match_ratio == pytest.approx(expected_ratio)

    def test_breakdown_fields(self):
        result = compute_score(_pairing(12, 20, 22), _qualities(25), _qualities(25))
        assert result.n_matched == 12
        assert result.n_overlap_a == 20
        assert result.n_overlap_b == 22
        assert 0 < result.consistency <= 1
        assert 0 < result.quality_weight <= 1
