"""Ridge-image rendering (visualization substrate).

The quantitative pipeline in this reproduction is template-based: sensors
observe minutiae directly, because that is what the matcher consumes and
what the study measures.  For the examples and documentation it is still
useful to *see* a synthetic finger, so this module renders an
approximate ridge image from the orientation field:

* a phase field is grown outward from the pad centre by integrating the
  ridge normal direction (a cheap variant of SFinGe's iterative Gabor
  expansion),
* intensity is ``cos(phase)`` masked to the pad ellipse, with dryness
  noise sprinkled on top,
* output is an 8-bit grayscale array plus a PGM writer, so no imaging
  dependency is required.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

import numpy as np

from .master import MasterFinger, RIDGE_PERIOD_MM


def render_ridge_image(
    finger: MasterFinger,
    pixels_per_mm: float = 10.0,
    dryness: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Render ``finger`` as an 8-bit grayscale ridge image.

    Parameters
    ----------
    finger:
        The master finger to draw.
    pixels_per_mm:
        Output resolution (10 px/mm ~ 254 dpi, plenty for inspection).
    dryness:
        0–1; dry skin breaks ridges into speckle.
    rng:
        Noise source when ``dryness > 0``.

    Returns
    -------
    numpy.ndarray
        ``(H, W)`` uint8 image, ridges dark on light background.
    """
    hw, hh = finger.pad_half_width, finger.pad_half_height
    width = int(np.ceil(2 * hw * pixels_per_mm))
    height = int(np.ceil(2 * hh * pixels_per_mm))
    xs = (np.arange(width) - width / 2.0) / pixels_per_mm
    ys = (np.arange(height) - height / 2.0) / pixels_per_mm
    gx, gy = np.meshgrid(xs, ys)

    # March rings outward from the centre, accumulating phase along the
    # local ridge-normal direction.  Sampling the orientation at a coarse
    # ring granularity keeps this O(pixels).
    theta = finger.fld.angle_at(gx, gy)
    normal_x = np.cos(theta + np.pi / 2.0)
    normal_y = np.sin(theta + np.pi / 2.0)
    # Project the position vector on the ridge normal: a first-order
    # phase approximation that is exact for parallel ridges and a good
    # visual approximation elsewhere.
    phase = (2.0 * np.pi / RIDGE_PERIOD_MM) * (gx * normal_x + gy * normal_y)
    image = 0.5 + 0.5 * np.cos(phase)

    if dryness > 0.0:
        if rng is None:
            rng = np.random.default_rng(0)
        speckle = rng.random(image.shape) < (0.35 * dryness)
        image = np.where(speckle, 1.0, image)

    mask = (gx / hw) ** 2 + (gy / hh) ** 2 <= 1.0
    image = np.where(mask, image, 1.0)
    return (np.clip(image, 0.0, 1.0) * 255).astype(np.uint8)


def write_pgm(image: np.ndarray, path: Path) -> None:
    """Write a grayscale uint8 image as a binary PGM (P5) file."""
    if image.ndim != 2 or image.dtype != np.uint8:
        raise ValueError("write_pgm expects a 2-D uint8 array")
    height, width = image.shape
    header = f"P5\n{width} {height}\n255\n".encode("ascii")
    Path(path).write_bytes(header + image.tobytes())


def read_pgm(path: Path) -> np.ndarray:
    """Read a binary PGM (P5) file written by :func:`write_pgm`.

    Supports the strict subset this library writes (maxval 255, a single
    comment-free header); anything else raises ``ValueError`` with the
    offending detail.
    """
    data = Path(path).read_bytes()
    if not data.startswith(b"P5"):
        raise ValueError(f"{path}: not a binary PGM (P5) file")
    # Header: magic, width, height, maxval — whitespace separated, then
    # exactly one whitespace byte before the raster.
    fields = []
    index = 2
    while len(fields) < 3:
        while index < len(data) and data[index : index + 1].isspace():
            index += 1
        start = index
        while index < len(data) and not data[index : index + 1].isspace():
            index += 1
        if start == index:
            raise ValueError(f"{path}: truncated PGM header")
        fields.append(data[start:index])
    index += 1  # single whitespace separating header from raster
    try:
        width, height, maxval = (int(f) for f in fields)
    except ValueError as exc:
        raise ValueError(f"{path}: malformed PGM header fields {fields}") from exc
    if maxval != 255:
        raise ValueError(f"{path}: unsupported PGM maxval {maxval}")
    raster = data[index : index + width * height]
    if len(raster) != width * height:
        raise ValueError(
            f"{path}: raster holds {len(raster)} bytes, expected {width * height}"
        )
    return np.frombuffer(raster, dtype=np.uint8).reshape(height, width)


def ascii_preview(image: np.ndarray, max_width: int = 70) -> str:
    """Downsample an image to an ASCII sketch for terminal inspection."""
    if image.ndim != 2:
        raise ValueError("ascii_preview expects a 2-D array")
    height, width = image.shape
    stride = max(1, int(np.ceil(width / max_width)))
    # Character cells are ~2x taller than wide; sample rows twice as coarsely.
    sampled = image[:: 2 * stride, ::stride]
    ramp = " .:-=+*#%@"
    indices = ((255 - sampled.astype(np.int32)) * (len(ramp) - 1)) // 255
    return "\n".join("".join(ramp[i] for i in row) for row in indices)


__all__ = ["render_ridge_image", "write_pgm", "read_pgm", "ascii_preview"]
