"""Online serving layer: persistent gallery + async matching server.

The batch study answers "how interoperable are these devices?" offline;
this package turns the same pipeline into the system the paper's
US-VISIT motivation actually describes — an online service where
fingers are enrolled once and verified or identified later, possibly
from a different device:

* :mod:`repro.service.gallery` — persistent, device-aware index of
  enrolled templates with an NFIQ quality gate and per-shard
  descriptor matrices for the two-stage ``/identify`` prefilter;
* :mod:`repro.service.batching` — admission queue that coalesces
  concurrent comparisons into batched matcher dispatches;
* :mod:`repro.service.server` — stdlib-asyncio HTTP server speaking
  the versioned ``/v1`` API (``/v1/enroll``, ``/v1/verify``,
  ``/v1/identify``, ``/v1/healthz``, ``/v1/stats``; legacy unversioned
  paths answer with a ``Deprecation`` header);
* :mod:`repro.service.client` — blocking client for tests, smoke
  checks, and the load benchmark;
* :mod:`repro.service.stats` — live request/latency/batch-size
  counters, mirrored into the telemetry manifest;
* :mod:`repro.service.metrics` — Prometheus text exposition behind
  ``GET /metrics`` plus a strict parser for validating scrapes;
* :mod:`repro.service.reqlog` — JSONL per-request audit log with
  size-based rotation;
* :mod:`repro.service.workers` — horizontally sharded serving: a
  supervised pool of matcher processes, each owning a BLAKE2b
  identity-hash slice of the gallery (``REPRO_SERVE_WORKERS`` /
  ``--workers``), with cross-shard top-K merges bit-identical to the
  single-process path;
* :mod:`repro.service.auth` — keyed access control: API-key principals
  from a hot-reloading keyfile (``--keys`` / ``REPRO_SERVE_KEYS``),
  constant-time lookup, per-endpoint roles (401/403 in the ``/v1``
  envelope);
* :mod:`repro.service.limits` — per-(principal, endpoint-class) token
  buckets and windowed quotas behind 429 ``rate_limited`` +
  ``Retry-After``;
* :mod:`repro.service.top` — the ``repro top`` live dashboard.

Gallery writes are durable: every enroll/delete is appended to a
write-ahead log (:mod:`repro.runtime.wal`) *before* it is applied and
acknowledged, the log is replayed at startup, and ``repro serve
--follow <wal>`` runs a read-only follower replica that tails the
same log (writes there answer 403 with the ``read_only`` error code).

Start one from the command line with ``repro serve`` (and populate it
with ``repro enroll``), or in-process::

    from repro.service import GalleryIndex, VerificationServer

    server = VerificationServer(GalleryIndex(Path("gallery")), port=0)
    await server.start()
"""

from .auth import (
    ANONYMOUS,
    ApiKeyAuthenticator,
    AuthenticationError,
    AuthorizationError,
    ENDPOINT_ROLES,
    KEYS_ENV,
    Principal,
    ROLES,
    generate_key,
    load_keyfile,
    parse_keyfile,
    write_keyfile,
)
from .batching import (
    BatchingConfig,
    DeadlineExceededError,
    MicroBatcher,
    ServiceOverloadError,
)
from .limits import (
    ENDPOINT_CLASSES,
    LimitsConfig,
    RateLimiter,
    RateLimitExceeded,
    TokenBucket,
)
from .client import (
    RETRYABLE_STATUSES,
    ServiceClient,
    ServiceClientError,
    encode_template,
)
from .gallery import (
    DEFAULT_MAX_NFIQ_LEVEL,
    EnrollmentRejected,
    GalleryError,
    GalleryIndex,
    GalleryReadOnlyError,
    GalleryRecord,
    UnknownIdentityError,
)
from .metrics import (
    EXPOSITION_CONTENT_TYPE,
    ExpositionParseError,
    parse_exposition,
    render_exposition,
    sample_value,
)
from .reqlog import RequestLog, iter_reqlog, slow_threshold_ms
from .runner import ServiceRunner
from .server import (
    DEFAULT_THRESHOLD,
    ServerStartupError,
    VerificationServer,
    decode_template_field,
)
from ..core.identification import DEFAULT_CANDIDATE_K, IDENTIFY_MODES
from .stats import ServiceStats
from .top import run_top
from .workers import (
    WorkerBrokenError,
    WorkerPool,
    WorkerPoolConfig,
    WorkerPoolDegradedError,
    shard_of,
)

__all__ = [
    "ANONYMOUS",
    "ApiKeyAuthenticator",
    "AuthenticationError",
    "AuthorizationError",
    "ENDPOINT_ROLES",
    "ENDPOINT_CLASSES",
    "KEYS_ENV",
    "Principal",
    "ROLES",
    "generate_key",
    "load_keyfile",
    "parse_keyfile",
    "write_keyfile",
    "LimitsConfig",
    "RateLimiter",
    "RateLimitExceeded",
    "TokenBucket",
    "BatchingConfig",
    "MicroBatcher",
    "ServiceOverloadError",
    "DeadlineExceededError",
    "ServiceClient",
    "ServiceClientError",
    "encode_template",
    "GalleryIndex",
    "GalleryRecord",
    "GalleryError",
    "GalleryReadOnlyError",
    "EnrollmentRejected",
    "UnknownIdentityError",
    "DEFAULT_MAX_NFIQ_LEVEL",
    "VerificationServer",
    "ServerStartupError",
    "ServiceRunner",
    "decode_template_field",
    "DEFAULT_THRESHOLD",
    "DEFAULT_CANDIDATE_K",
    "IDENTIFY_MODES",
    "RETRYABLE_STATUSES",
    "ServiceStats",
    "EXPOSITION_CONTENT_TYPE",
    "ExpositionParseError",
    "render_exposition",
    "parse_exposition",
    "sample_value",
    "RequestLog",
    "iter_reqlog",
    "slow_threshold_ms",
    "run_top",
    "WorkerPool",
    "WorkerPoolConfig",
    "WorkerBrokenError",
    "WorkerPoolDegradedError",
    "shard_of",
]
