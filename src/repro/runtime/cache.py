"""On-disk memoization of expensive study artifacts.

Paper-scale score generation takes minutes; the benchmark harness and the
analysis notebooks re-run the same configurations repeatedly.
:class:`NpzDirectory` is the shared persistence primitive — a directory
of named numpy-array bundles with atomic writes, corruption-as-miss
semantics and telemetry counters — and :class:`ScoreCache` is its
score-set instantiation.  The artifact store
(:mod:`repro.runtime.artifacts`) builds its content-addressed tiers on
the same primitive, so both cache layers share one battle-tested format.

The format is deliberately simple — one ``.npz`` file per entry — so a
corrupt entry can be deleted by hand and nothing else is affected.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import zipfile
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from . import faults
from .errors import CacheError
from .telemetry import get_logger, get_recorder

_KEY_RE = re.compile(r"^[A-Za-z0-9._-]+$")

#: Everything np.load raises for a truncated/garbage entry: OSError for
#: I/O trouble, ValueError for non-npz bytes, BadZipFile for a file that
#: has a zip header but a mangled archive (the classic crashed-write).
_CORRUPT_ENTRY_ERRORS = (OSError, ValueError, zipfile.BadZipFile)

_log = get_logger("cache")


class NpzDirectory:
    """A directory of named numpy-array bundles.

    Parameters
    ----------
    directory:
        Entry root; created on first write.  ``None`` produces a disabled
        store whose :meth:`load` always misses — callers never need to
        branch on whether persistence is configured.
    metric_prefix:
        Namespace for the telemetry counters this store emits
        (``{prefix}.hit``, ``{prefix}.miss``, ``{prefix}.corrupt``,
        ``{prefix}.store``, ``{prefix}.bytes_read``,
        ``{prefix}.bytes_written``).  The score cache counts under
        ``cache.*``, the artifact store under ``artifacts.*``, so one
        manifest separates the two layers.
    readonly:
        A read-only view over a directory another process owns (a WAL
        follower reading the primary's gallery shards): :meth:`store`
        and :meth:`invalidate` raise, and a corrupt entry is still a
        miss but is *not* unlinked — never mutate a store you don't own.
    """

    def __init__(
        self,
        directory: Optional[os.PathLike] = None,
        metric_prefix: str = "cache",
        readonly: bool = False,
    ) -> None:
        self._root: Optional[Path] = Path(directory) if directory is not None else None
        self._prefix = metric_prefix
        self._readonly = bool(readonly)

    @property
    def enabled(self) -> bool:
        """Whether this store persists anything."""
        return self._root is not None

    @property
    def root(self) -> Optional[Path]:
        """The backing directory (``None`` when disabled)."""
        return self._root

    def _count(self, event: str, value: int = 1) -> None:
        get_recorder().count(f"{self._prefix}.{event}", value)

    def _path_for(self, key: str) -> Path:
        if self._root is None:
            raise CacheError("cache is disabled; no path exists")
        if not _KEY_RE.match(key):
            raise CacheError(
                f"cache key {key!r} contains characters outside [A-Za-z0-9._-]"
            )
        return self._root / f"{key}.npz"

    def store(self, key: str, arrays: Dict[str, np.ndarray], meta: Optional[dict] = None) -> None:
        """Persist ``arrays`` (and optional JSON-able ``meta``) under ``key``.

        Writes are atomic (write to a temp file, then rename), so a
        crashed run never leaves a truncated entry behind.
        """
        if self._root is None:
            return
        if self._readonly:
            raise CacheError(f"store is read-only; cannot write {key!r}")
        path = self._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = dict(arrays)
        if meta is not None:
            payload["__meta__"] = np.frombuffer(
                json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
            )
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(handle, **payload)
            os.replace(tmp_name, path)
            faults.corrupt_hook(path, key)
            self._count("store")
            try:
                self._count("bytes_written", path.stat().st_size)
            except OSError:  # pragma: no cover - entry raced away
                pass
        except OSError as exc:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise CacheError(f"could not write cache entry {key!r}: {exc}") from exc

    def load(self, key: str) -> Optional[Dict[str, np.ndarray]]:
        """Return the arrays stored under ``key``, or ``None`` on a miss.

        A corrupt entry is treated as a miss (and removed) rather than an
        error: the cache is an optimization, never a source of truth.
        """
        if self._root is None:
            return None
        path = self._path_for(key)
        if not path.exists():
            self._count("miss")
            return None
        try:
            size = path.stat().st_size
            with np.load(path) as bundle:
                arrays = {name: bundle[name] for name in bundle.files}
        except _CORRUPT_ENTRY_ERRORS:
            self._count("corrupt")
            self._count("miss")
            if self._readonly:
                _log.warning(
                    "corrupt cache entry skipped (read-only store)",
                    extra={"data": {"key": key}},
                )
                return None
            _log.warning(
                "corrupt cache entry removed", extra={"data": {"key": key}}
            )
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self._count("hit")
        self._count("bytes_read", size)
        arrays.pop("__meta__", None)
        return arrays

    def load_meta(self, key: str) -> Optional[dict]:
        """Return the JSON metadata stored alongside ``key``, if any."""
        if self._root is None:
            return None
        path = self._path_for(key)
        if not path.exists():
            return None
        try:
            with np.load(path) as bundle:
                if "__meta__" not in bundle.files:
                    return None
                raw = bytes(bundle["__meta__"].tobytes())
        except _CORRUPT_ENTRY_ERRORS:
            self._count("corrupt")
            return None
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None

    def invalidate(self, key: str) -> bool:
        """Remove ``key`` from the cache; returns whether it existed."""
        if self._root is None:
            return False
        if self._readonly:
            raise CacheError(f"store is read-only; cannot invalidate {key!r}")
        path = self._path_for(key)
        if path.exists():
            path.unlink()
            return True
        return False

    def clear(self) -> int:
        """Remove every entry; returns the number of entries removed."""
        if self._root is None or not self._root.exists():
            return 0
        removed = 0
        for path in self._root.glob("*.npz"):
            path.unlink()
            removed += 1
        return removed

    def stats(self) -> Dict[str, int]:
        """Current on-disk footprint: ``{"entries": n, "bytes": total}``."""
        if self._root is None or not self._root.exists():
            return {"entries": 0, "bytes": 0}
        entries = 0
        total = 0
        for path in self._root.glob("*.npz"):
            entries += 1
            try:
                total += path.stat().st_size
            except OSError:  # pragma: no cover - entry raced away
                pass
        return {"entries": entries, "bytes": total}


class ScoreCache(NpzDirectory):
    """The score-set cache: named numpy bundles under ``cache.*`` metrics.

    Keys are built by the study orchestrator from the config/protocol
    fingerprints plus the scenario and device-pair shard, so a score set
    is computed at most once per configuration.
    """

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        super().__init__(directory, metric_prefix="cache")


__all__ = ["NpzDirectory", "ScoreCache"]
