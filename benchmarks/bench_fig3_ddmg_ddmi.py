"""F3 — Figure 3: DDMG vs DDMI histogram, Guardian R2 gallery vs digID
Mini probe.

Expected shape (paper): the genuine/impostor overlap grows relative to
Figure 2 — "a substantially higher number of genuine scores is less
than 7, though very few impostor scores are high too".
"""

import numpy as np

from repro.api import render_score_histograms


def test_fig3_cross_device_histograms(benchmark, study, record_artifact):
    sets = study.score_sets()
    genuine = sets["DDMG"].for_pair("D0", "D1")
    impostor = sets["DDMI"].for_pair("D0", "D1")

    def render():
        return render_score_histograms(
            genuine,
            impostor,
            "Figure 3: DDMG vs DDMI, Guardian R2 (gallery) vs digID Mini (probe)",
        )

    text = benchmark(render)
    record_artifact(text)
    print("\n" + text)

    same_genuine = sets["DMG"].for_pair("D0", "D0")
    # More genuine mass below 7 than in the same-device scenario.
    cross_low = np.mean(genuine.scores < 7.0)
    same_low = np.mean(same_genuine.scores < 7.0)
    assert cross_low >= same_low
    # Impostors remain low despite device diversity.
    assert impostor.scores.max() < 8.5
