"""Device registry: Table 1 fidelity."""

import pytest

from repro.runtime.errors import ConfigurationError
from repro.sensors.registry import (
    DEVICE_ORDER,
    DEVICE_PROFILES,
    LIVESCAN_DEVICES,
    get_profile,
    table1_rows,
)


class TestTable1Fidelity:
    """The published physical characteristics, verbatim."""

    def test_five_devices(self):
        assert set(DEVICE_PROFILES) == {"D0", "D1", "D2", "D3", "D4"}

    def test_all_500_dpi(self):
        for profile in DEVICE_PROFILES.values():
            assert profile.resolution_dpi == 500

    @pytest.mark.parametrize(
        "device,model",
        [
            ("D0", "Cross Match Guardian R2"),
            ("D1", "i3 digID Mini"),
            ("D2", "L1 Identity Solutions TouchPrint 5300"),
            ("D3", "Cross Match Seek II"),
        ],
    )
    def test_models(self, device, model):
        assert DEVICE_PROFILES[device].model == model

    @pytest.mark.parametrize(
        "device,width", [("D0", 800), ("D1", 752), ("D2", 800), ("D3", 800)]
    )
    def test_image_widths(self, device, width):
        assert DEVICE_PROFILES[device].image_width_px == width

    def test_all_750_high(self):
        for device in LIVESCAN_DEVICES:
            assert DEVICE_PROFILES[device].image_height_px == 750

    def test_seek2_small_capture_area(self):
        d3 = DEVICE_PROFILES["D3"]
        assert (d3.capture_width_mm, d3.capture_height_mm) == (40.6, 38.1)

    def test_desktop_capture_areas(self):
        for device in ("D0", "D1", "D2"):
            profile = DEVICE_PROFILES[device]
            assert (profile.capture_width_mm, profile.capture_height_mm) == (81.0, 76.0)


class TestStructure:
    def test_order_ink_last(self):
        assert DEVICE_ORDER[-1] == "D4"
        assert DEVICE_PROFILES["D4"].family == "ink"

    def test_livescan_excludes_ink(self):
        assert "D4" not in LIVESCAN_DEVICES
        assert len(LIVESCAN_DEVICES) == 4

    def test_window_clipped_by_image(self):
        # An 800x750 image at 500 dpi spans only 40.6 x 38.1 mm, so the
        # effective window is smaller than the platen's quoted 81x76.
        w, h = DEVICE_PROFILES["D0"].window_mm
        assert w == pytest.approx(40.64, abs=0.01)
        assert h == pytest.approx(38.1, abs=0.01)

    def test_get_profile_errors_helpfully(self):
        with pytest.raises(ConfigurationError, match="D9"):
            get_profile("D9")

    def test_ink_distortion_dominates(self):
        # The causal ordering behind Figure 4: ink's systematic warp
        # exceeds every optical device's.
        ink = DEVICE_PROFILES["D4"].signature_magnitude_mm
        for device in LIVESCAN_DEVICES:
            assert ink > DEVICE_PROFILES[device].signature_magnitude_mm

    def test_d1_noisiest_livescan(self):
        # The model explanation for the paper's {D1,D1} FNMR anomaly.
        d1 = DEVICE_PROFILES["D1"]
        for device in ("D0", "D2", "D3"):
            assert d1.elastic_magnitude_mm >= DEVICE_PROFILES[device].elastic_magnitude_mm
            assert d1.detection_reliability <= DEVICE_PROFILES[device].detection_reliability

    def test_d3_handheld_placement(self):
        # The model explanation for the paper's {D3,D3} anomaly.
        d3 = DEVICE_PROFILES["D3"]
        for device in ("D0", "D1", "D2"):
            assert d3.placement_sigma_mm > DEVICE_PROFILES[device].placement_sigma_mm


class TestTable1Rows:
    def test_four_livescan_rows(self):
        rows = table1_rows()
        assert len(rows) == 4
        assert rows[0]["device"] == "D0"
        assert "800 x 750" in rows[0]["image_size_px"]
