"""Matcher facade — the reproduction's "SDK".

:class:`BioEngineMatcher` chains the pipeline stages (descriptors →
consensus alignment → tolerance-box pairing → calibrated score) behind
the two-method interface a commercial SDK exposes: ``match`` for a bare
score and ``match_detailed`` for diagnostics.

Descriptor sets are memoized per template (keyed by identity), because
the study matches every gallery template against hundreds of probes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from ..runtime.errors import MatcherError
from ..runtime.telemetry import get_recorder
from .alignment import RigidTransform, candidate_pairs, estimate_alignments
from .descriptors import DescriptorSet, build_descriptors, similarity_matrix
from .pairing import PairingResult, pair_minutiae
from .scoring import (
    MIN_TEMPLATE_MINUTIAE,
    ScoreBreakdown,
    compute_score,
)
from .types import Template


@dataclass(frozen=True)
class MatchResult:
    """Full diagnostics of one comparison."""

    score: float
    breakdown: ScoreBreakdown
    transform: Optional[RigidTransform]
    pairing: Optional[PairingResult]


class BioEngineMatcher:
    """Minutiae matcher calibrated to the paper's score landmarks.

    Thread-compatibility note: the descriptor memo is a plain dict; use
    one matcher instance per process (the parallel harness does).
    """

    #: Name used by :class:`~repro.runtime.config.StudyConfig`.
    name = "bioengine"

    def __init__(self, max_cache_entries: int = 4096) -> None:
        self._descriptor_cache: Dict[int, DescriptorSet] = {}
        self._max_cache_entries = max_cache_entries

    def _descriptors(self, template: Template) -> DescriptorSet:
        key = id(template)
        cached = self._descriptor_cache.get(key)
        if cached is not None and cached.n == len(template):
            return cached
        descriptors = build_descriptors(template)
        if len(self._descriptor_cache) >= self._max_cache_entries:
            self._descriptor_cache.clear()
        self._descriptor_cache[key] = descriptors
        return descriptors

    def match(self, probe: Template, gallery: Template) -> float:
        """Similarity score; higher means more likely the same finger."""
        return self.match_detailed(probe, gallery).score

    def match_detailed(self, probe: Template, gallery: Template) -> MatchResult:
        """Score plus alignment/pairing diagnostics.

        When telemetry is enabled, every invocation bumps the
        ``matcher.invocations`` counter and feeds the per-comparison
        latency into the ``matcher.match_seconds`` histogram; with the
        default :class:`~repro.runtime.telemetry.NullRecorder` the
        overhead is a single attribute check.
        """
        recorder = get_recorder()
        if not recorder.active:
            return self._match_detailed(probe, gallery)
        start = time.perf_counter()
        result = self._match_detailed(probe, gallery)
        recorder.count("matcher.invocations")
        recorder.observe("matcher.match_seconds", time.perf_counter() - start)
        return result

    def _match_detailed(self, probe: Template, gallery: Template) -> MatchResult:
        if probe is None or gallery is None:
            raise MatcherError("match requires two templates")
        if len(probe) < MIN_TEMPLATE_MINUTIAE or len(gallery) < MIN_TEMPLATE_MINUTIAE:
            # Degenerate capture: a real SDK reports failure-to-match with
            # a floor score rather than raising.
            empty = ScoreBreakdown(
                score=0.0, match_ratio=0.0, consistency=0.0, quality_weight=0.0,
                n_matched=0, n_overlap_a=0, n_overlap_b=0,
            )
            return MatchResult(score=0.0, breakdown=empty, transform=None, pairing=None)

        desc_p = self._descriptors(probe)
        desc_g = self._descriptors(gallery)
        similarity = similarity_matrix(desc_p, desc_g)
        candidates = candidate_pairs(similarity)

        positions_p = probe.positions_mm()
        positions_g = gallery.positions_mm()
        angles_p = probe.angles()
        angles_g = gallery.angles()

        transforms = estimate_alignments(
            positions_p, angles_p, positions_g, angles_g, candidates
        )
        if not transforms:
            empty = ScoreBreakdown(
                score=0.0, match_ratio=0.0, consistency=0.0, quality_weight=0.0,
                n_matched=0, n_overlap_a=0, n_overlap_b=0,
            )
            return MatchResult(score=0.0, breakdown=empty, transform=None, pairing=None)

        qualities_p = probe.qualities()
        qualities_g = gallery.qualities()
        best: Optional[MatchResult] = None
        for transform in transforms:
            pairing = pair_minutiae(
                positions_p, angles_p, positions_g, angles_g, transform
            )
            breakdown = compute_score(pairing, qualities_p, qualities_g)
            result = MatchResult(
                score=breakdown.score,
                breakdown=breakdown,
                transform=transform,
                pairing=pairing,
            )
            if best is None or result.score > best.score:
                best = result
        return best


__all__ = ["BioEngineMatcher", "MatchResult"]
