"""Matcher throughput — the cost model behind the 616k-comparison study.

Times a single genuine and a single impostor comparison for both
engines; at paper scale Table 3 implies ~616,000 comparisons, so the
per-match latency sets the wall-clock of a full reproduction.
"""

from repro.api import BioEngineMatcher, RidgeGeometryMatcher


def _templates(study):
    collection = study.collection()
    a = collection.get(0, "right_index", "D0", 0).template
    b = collection.get(0, "right_index", "D1", 1).template
    c = collection.get(1, "right_index", "D0", 1).template
    return a, b, c


def test_bioengine_genuine_throughput(benchmark, study):
    gallery, probe, __ = _templates(study)
    matcher = BioEngineMatcher()
    score = benchmark(matcher.match, probe, gallery)
    assert score > 5.0


def test_bioengine_impostor_throughput(benchmark, study):
    gallery, __, impostor = _templates(study)
    matcher = BioEngineMatcher()
    score = benchmark(matcher.match, impostor, gallery)
    assert score < 8.5


def test_ridgecount_throughput(benchmark, study):
    gallery, probe, __ = _templates(study)
    matcher = RidgeGeometryMatcher()
    benchmark(matcher.match, probe, gallery)


def test_incits378_codec_throughput(benchmark, study):
    from repro.api import decode, encode

    gallery, __, ___ = _templates(study)

    def roundtrip():
        return decode(encode(gallery))

    template, __ = benchmark(roundtrip)
    assert len(template) == len(gallery)
