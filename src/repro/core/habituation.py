"""Habituation analysis — §V: "the effect of user habituation on the
quality of the fingerprint samples obtained".

The collection protocol tracks each subject's cumulative presentation
counter, so the paper's question — "do the quality of the images
obtained improve when we compare, say, the first sample obtained from a
participant with the last one?" — is directly answerable:

* :func:`quality_by_presentation` — mean quality utility per
  presentation index across the population;
* :func:`first_vs_last` — the paper's exact comparison, per subject,
  with a sign-test p-value (how many subjects improved?);
* :func:`habituation_slope` — least-squares trend of quality over the
  session, restricted to the live-scan presentations so the ink-card
  finale does not masquerade as fatigue.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..quality.nfiq import quality_utility
from ..sensors.protocol import Collection
from ..stats.kendall import erfc_two_sided


def quality_by_presentation(
    collection: Collection, livescan_only: bool = False
) -> Dict[int, float]:
    """Mean quality utility per presentation index.

    ``livescan_only`` drops ink-card impressions, which always come last
    in the protocol and are worse for reasons unrelated to habituation.
    """
    buckets: Dict[int, List[float]] = {}
    for impression in collection:
        if livescan_only and impression.device_id == "D4":
            continue
        buckets.setdefault(impression.presentation_index, []).append(
            quality_utility(impression.features)
        )
    return {index: float(np.mean(values)) for index, values in sorted(buckets.items())}


@dataclass(frozen=True)
class FirstVsLastResult:
    """Outcome of the paper's first-sample-vs-last-sample comparison.

    Attributes
    ----------
    improved, worsened, unchanged:
        Subject counts by the sign of (last - first) quality utility.
    mean_delta:
        Mean per-subject utility change.
    p_value:
        Two-sided sign-test p-value (normal approximation) under the
        null of no habituation.
    """

    improved: int
    worsened: int
    unchanged: int
    mean_delta: float
    p_value: float

    @property
    def n_subjects(self) -> int:
        """Subjects entering the comparison."""
        return self.improved + self.worsened + self.unchanged


def first_vs_last(collection: Collection, livescan_only: bool = True) -> FirstVsLastResult:
    """Compare each subject's first vs second visit, *device-controlled*.

    The raw presentation index confounds habituation with the fixed
    device order (presentations 4-7 are always the noisier digID Mini),
    so the paper's question must be asked within a device: for each
    (subject, finger, device), compare the set-0 impression against the
    set-1 impression — same hardware, later presentation.  The per-
    subject delta averages those within-device revisit changes.
    """
    per_key: Dict[Tuple[int, str, str], Dict[int, float]] = {}
    for impression in collection:
        if livescan_only and impression.device_id == "D4":
            continue
        key = (impression.subject_id, impression.finger_label, impression.device_id)
        per_key.setdefault(key, {})[impression.set_index] = quality_utility(
            impression.features
        )
    per_subject: Dict[int, List[float]] = {}
    for (subject_id, __, ___), sets in per_key.items():
        if 0 in sets and 1 in sets:
            per_subject.setdefault(subject_id, []).append(sets[1] - sets[0])
    improved = worsened = unchanged = 0
    deltas: List[float] = []
    for subject_deltas in per_subject.values():
        delta = float(np.mean(subject_deltas))
        deltas.append(delta)
        if delta > 1e-12:
            improved += 1
        elif delta < -1e-12:
            worsened += 1
        else:
            unchanged += 1
    n_effective = improved + worsened
    if n_effective == 0:
        p_value = 1.0
    else:
        z = (improved - worsened) / math.sqrt(n_effective)
        p_value = erfc_two_sided(z)
    return FirstVsLastResult(
        improved=improved,
        worsened=worsened,
        unchanged=unchanged,
        mean_delta=float(np.mean(deltas)) if deltas else 0.0,
        p_value=p_value,
    )


def control_by_presentation(collection: Collection) -> Dict[int, float]:
    """Mean pressure-control error per presentation index.

    The *mechanism* of habituation is presentation control: with
    practice, subjects press closer to the ideal pressure (~0.75).  This
    measures the mean absolute deviation from that ideal directly from
    the recorded presentation conditions — a far higher-signal view than
    image quality, which folds in skin state and device effects.
    """
    buckets: Dict[int, List[float]] = {}
    for impression in collection:
        buckets.setdefault(impression.presentation_index, []).append(
            abs(impression.conditions.pressure - 0.75)
        )
    return {index: float(np.mean(values)) for index, values in sorted(buckets.items())}


def habituation_slope(collection: Collection) -> float:
    """Least-squares slope of quality utility vs presentation index.

    Computed over live-scan presentations only; a positive slope means
    presentation quality improves as the subject habituates.
    """
    by_index = quality_by_presentation(collection, livescan_only=True)
    if len(by_index) < 2:
        return 0.0
    xs = np.array(sorted(by_index))
    ys = np.array([by_index[i] for i in xs])
    xs_c = xs - xs.mean()
    denom = float(np.sum(xs_c**2))
    if denom == 0.0:
        return 0.0
    return float(np.sum(xs_c * (ys - ys.mean())) / denom)


def render_habituation(collection: Collection) -> str:
    """Text rendering of the habituation analysis."""
    by_index = quality_by_presentation(collection)
    result = first_vs_last(collection)
    lines = ["Habituation: mean quality utility by presentation index"]
    for index, value in by_index.items():
        bar = "#" * int(round(value * 50))
        lines.append(f"  presentation {index:>2}: {value:.3f} |{bar}")
    lines.append(
        f"first vs last (live-scan): {result.improved} improved, "
        f"{result.worsened} worsened, {result.unchanged} unchanged "
        f"(mean delta {result.mean_delta:+.3f}, sign-test p {result.p_value:.3g})"
    )
    lines.append(f"live-scan habituation slope: {habituation_slope(collection):+.4f}/presentation")
    control = control_by_presentation(collection)
    indices = sorted(control)
    if len(indices) >= 8:
        early = float(np.mean([control[i] for i in indices[:4]]))
        late = float(np.mean([control[i] for i in indices[-4:]]))
        lines.append(
            f"pressure-control error: first presentations {early:.3f} -> "
            f"last presentations {late:.3f}"
        )
    return "\n".join(lines)


__all__ = [
    "quality_by_presentation",
    "control_by_presentation",
    "FirstVsLastResult",
    "first_vs_last",
    "habituation_slope",
    "render_habituation",
]
