"""Asyncio HTTP server for online verification and identification.

A deliberately small, dependency-free HTTP/1.1 server (stdlib asyncio
only — the reproduction adds no packages) exposing the study's matcher
as an online service.  The HTTP surface is versioned under ``/v1``:

========  =================================  ====================================
Method    Path                               Meaning
========  =================================  ====================================
POST      ``/v1/enroll``                     quality-gated enrollment
POST      ``/v1/verify``                     1:1 claim check against one enrollment
POST      ``/v1/identify``                   1:N rank-k search (exact or two-stage)
DELETE    ``/v1/enroll/<device>/<identity>`` remove one enrollment
GET       ``/v1/healthz``                    liveness + gallery size
GET       ``/v1/stats``                      live counters, latency, batch sizes
GET       ``/v1/metrics``                    Prometheus text exposition of the same
POST      ``/v1/admin/keys/reload``          force a keyfile reload (auth mode only)
========  =================================  ====================================

The legacy unversioned paths (``/verify``, ...) still answer — with
identical semantics — but carry a ``Deprecation: true`` header (RFC
8594 style) so clients notice before the paths disappear.  Every error
response, on every endpoint and status code, is one envelope shape::

    {"error": {"code": "unknown_identity", "message": "...",
               "request_id": "...", "kind": "UnknownIdentityError"}}

``code`` is a stable machine-readable slug (per-status, see
``_ERROR_CODES``), ``message`` is human-readable, ``request_id`` echoes
the ``X-Request-ID`` header, and ``kind`` (when present) names the
library exception class.

``/identify`` is two-stage capable: ``REPRO_IDENTIFY_MODE=two_stage``
(or ``"mode": "two_stage"`` per request) runs the descriptor prefilter
(:meth:`repro.service.gallery.GalleryIndex.prefilter`) and hands only
the top ``candidate_k`` survivors to the exact matcher; ``exact``
(the default) remains the exhaustive recall oracle, bit-identical to
the pre-index behavior.

Every request is traced: the server honors a client-supplied
``X-Request-ID`` header (token-shaped, else it generates one), installs
a :class:`~repro.runtime.telemetry.TraceContext` for the request task,
and echoes the id on **every** response — success, error, even a
malformed request line — so client and server logs join on one key.
The trace records a phase timeline (``[auth → limits →] parse →
gallery → [prefilter →] queue_wait → batch_wait → match → respond``;
the ``auth``/``limits`` phases appear when keyed access is enabled and
run *before* the body is decoded, the ``prefilter`` phase appears on
two-stage identify requests, and sharded serving adds a
``worker_dispatch`` phase covering the scatter/gather round trip);
finished requests are appended to an
optional JSONL :class:`~repro.service.reqlog.RequestLog` (each line
carries the authenticated ``principal``), and requests
slower than ``REPRO_SERVE_SLOW_MS`` dump their full timeline at
WARNING.  Overloaded (503) and rate-limited (429) responses carry
``Retry-After`` so well-behaved clients back off.

Admission control (see :mod:`repro.service.auth` and
:mod:`repro.service.limits`) activates when a keyfile is configured —
``REPRO_SERVE_KEYS``, ``repro serve --keys``, or an explicit
``auth=ApiKeyAuthenticator(...)``.  Missing/unknown credentials → 401
``unauthorized``, a valid key lacking the endpoint's role → 403
``forbidden``, an exhausted token bucket or quota → 429
``rate_limited``; all in the one error envelope.  Without a keyfile
the server stays open, bit-identical to the pre-auth stack.

Templates travel as base64-encoded ANSI/INCITS 378 records — the same
interchange format the paper's interoperability scenario is about — so
any client that can produce a standard minutiae record can talk to the
server.  Match work is delegated to the
:class:`~repro.service.batching.MicroBatcher`, which coalesces the
comparisons of concurrent requests into batched matcher dispatches.

Failures map the study's error taxonomy onto HTTP status codes:

* malformed JSON / bad template / bad parameters
  (:class:`~repro.runtime.errors.TemplateFormatError`,
  :class:`~repro.runtime.errors.ConfigurationError`) → 400,
* unknown identity → 404,
* quality-gate rejection → 409,
* admission-queue overload (transient) → 503,
* deadline exceeded (transient) → 504.

Binding a port that is already taken raises
:class:`ServerStartupError`, a :class:`~repro.runtime.errors.TransientError`
— the CLI surfaces it with the transient exit code so a supervising
process knows a retry (or a different port) can succeed.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import json
import os
import time
from contextlib import nullcontext
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..core.identification import DEFAULT_CANDIDATE_K, IDENTIFY_MODES
from ..io.incits378 import decode as decode_378
from ..matcher.engine import BioEngineMatcher
from ..matcher.types import Template
from ..runtime.config import env_float, env_int, env_str
from ..runtime.errors import (
    ConfigurationError,
    PermanentError,
    ReproError,
    TemplateFormatError,
    TransientError,
)
from ..runtime.telemetry import (
    TraceContext,
    current_trace,
    get_logger,
    get_recorder,
    new_request_id,
    reset_current_trace,
    sanitize_request_id,
    set_current_trace,
)
from .auth import (
    ANONYMOUS,
    ApiKeyAuthenticator,
    AuthenticationError,
    AuthorizationError,
    ENDPOINT_ROLES,
    Principal,
)
from .batching import (
    BatchingConfig,
    DeadlineExceededError,
    MicroBatcher,
    ServiceOverloadError,
)
from .limits import LimitsConfig, RateLimiter, RateLimitExceeded
from ..core.prefilter import descriptor_vector
from ..runtime.wal import WalError, WalFollower
from .gallery import (
    EnrollmentRejected,
    GalleryIndex,
    GalleryReadOnlyError,
    UnknownIdentityError,
)
from .metrics import EXPOSITION_CONTENT_TYPE, render_exposition
from .reqlog import RequestLog, slow_threshold_ms
from .stats import ServiceStats
from .workers import WorkerPool, WorkerPoolConfig, WorkerPoolDegradedError

#: Operating threshold on the matcher's 0–30 score scale.  The paper's
#: figures put the impostor band at 0–7 and genuine scores at 7–24, so
#: 7.5 sits just above the impostor ceiling; override per deployment
#: with ``REPRO_SERVE_THRESHOLD`` or per request with ``"threshold"``.
DEFAULT_THRESHOLD = 7.5

#: Largest accepted request body; INCITS 378 templates are ~1 KiB.
MAX_BODY_BYTES = 1 << 20

#: How often a follower polls the primary's WAL for new records, in
#: milliseconds (``REPRO_WAL_POLL_MS`` overrides).
DEFAULT_WAL_POLL_MS = 200.0

_log = get_logger("service.server")


def _phase(name: str):
    """Context manager timing `name` on the current trace (no-op untraced)."""
    trace = current_trace()
    return trace.phase(name) if trace is not None else nullcontext()


class ServerStartupError(TransientError):
    """The server could not bind its address (typically: port in use)."""


class _HttpError(Exception):
    """Internal: an HTTP failure response ready to send."""

    def __init__(self, status: int, message: str, code: Optional[str] = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.code = code or _DEFAULT_CODES.get(status, "error")


_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Stable machine-readable slug per HTTP failure status — the ``code``
#: field of the error envelope when no more specific one applies.
_DEFAULT_CODES = {
    400: "bad_request",
    401: "unauthorized",
    403: "read_only",
    404: "not_found",
    405: "method_not_allowed",
    409: "conflict",
    413: "payload_too_large",
    429: "rate_limited",
    500: "internal",
    503: "overloaded",
    504: "deadline_exceeded",
}


def _status_for(exc: ReproError) -> int:
    """Map a library exception onto its HTTP status."""
    if isinstance(exc, AuthenticationError):
        return 401
    if isinstance(exc, AuthorizationError):
        return 403
    if isinstance(exc, RateLimitExceeded):
        return 429
    if isinstance(exc, EnrollmentRejected):
        return 409
    if isinstance(exc, GalleryReadOnlyError):
        return 403
    if isinstance(exc, UnknownIdentityError):
        return 404
    if isinstance(exc, ServiceOverloadError):
        return 503
    if isinstance(exc, DeadlineExceededError):
        return 504
    if isinstance(exc, (TemplateFormatError, ConfigurationError)):
        return 400
    if isinstance(exc, PermanentError):
        return 400
    return 500


def _code_for(exc: ReproError) -> str:
    """The error-envelope ``code`` slug for a library exception."""
    if isinstance(exc, AuthenticationError):
        return "unauthorized"
    if isinstance(exc, AuthorizationError):
        return "forbidden"
    if isinstance(exc, RateLimitExceeded):
        return "rate_limited"
    if isinstance(exc, EnrollmentRejected):
        return "quality_rejected"
    if isinstance(exc, GalleryReadOnlyError):
        return "read_only"
    if isinstance(exc, UnknownIdentityError):
        return "unknown_identity"
    if isinstance(exc, ServiceOverloadError):
        return "overloaded"
    if isinstance(exc, DeadlineExceededError):
        return "deadline_exceeded"
    if isinstance(exc, TemplateFormatError):
        return "invalid_template"
    if isinstance(exc, ConfigurationError):
        return "invalid_request"
    if isinstance(exc, PermanentError):
        return "bad_request"
    return "internal"


def _error_envelope(
    code: str,
    message: str,
    request_id: str,
    kind: Optional[str] = None,
) -> dict:
    """The one error shape every endpoint and status code speaks."""
    error = {"code": code, "message": message, "request_id": request_id}
    if kind is not None:
        error["kind"] = kind
    return {"error": error}


def decode_template_field(payload: dict, field: str = "template") -> Template:
    """Decode a base64 INCITS 378 template from a JSON request body."""
    raw = payload.get(field)
    if not isinstance(raw, str) or not raw:
        raise TemplateFormatError(f"request body needs a base64 {field!r} field")
    try:
        buffer = base64.b64decode(raw, validate=True)
    except (binascii.Error, ValueError) as exc:
        raise TemplateFormatError(f"{field} is not valid base64: {exc}") from exc
    template, _metadata = decode_378(buffer)
    return template


class VerificationServer:
    """The online serving layer bundled into one object.

    Owns a :class:`~repro.service.gallery.GalleryIndex`, a matcher, and a
    :class:`~repro.service.batching.MicroBatcher`; speaks HTTP/1.1 with
    keep-alive on an asyncio event loop.  ``port=0`` binds an ephemeral
    port (read it back from :attr:`address` — tests do).
    """

    def __init__(
        self,
        gallery: GalleryIndex,
        matcher=None,
        host: str = "127.0.0.1",
        port: int = 8799,
        threshold: Optional[float] = None,
        batching: Optional[BatchingConfig] = None,
        stats: Optional[ServiceStats] = None,
        reqlog: Optional[RequestLog] = None,
        tracing: Optional[bool] = None,
        slow_ms: Optional[float] = None,
        identify_mode: Optional[str] = None,
        candidate_k: Optional[int] = None,
        workers: Optional[int] = None,
        matcher_factory=None,
        follow: Optional[os.PathLike] = None,
        auth=None,
        limits=None,
    ) -> None:
        if threshold is None:
            threshold = env_float("REPRO_SERVE_THRESHOLD")
        if identify_mode is None:
            identify_mode = env_str("REPRO_IDENTIFY_MODE") or "exact"
        if identify_mode not in IDENTIFY_MODES:
            raise ConfigurationError(
                f"identify mode must be one of {IDENTIFY_MODES}, "
                f"got {identify_mode!r}"
            )
        if candidate_k is None:
            candidate_k = env_int("REPRO_IDENTIFY_CANDIDATES")
        if candidate_k is None:
            candidate_k = DEFAULT_CANDIDATE_K
        if candidate_k < 1:
            raise ConfigurationError(
                f"candidate_k must be >= 1, got {candidate_k}"
            )
        self.identify_mode = identify_mode
        self.candidate_k = int(candidate_k)
        self.gallery = gallery
        self.matcher = matcher if matcher is not None else BioEngineMatcher()
        self.threshold = DEFAULT_THRESHOLD if threshold is None else float(threshold)
        self.stats = stats if stats is not None else ServiceStats()
        self.batcher = MicroBatcher(
            self.matcher,
            stats=self.stats,
            config=batching if batching is not None else BatchingConfig.from_environment(),
        )
        if tracing is None:
            flag = env_int("REPRO_SERVE_TRACING")
            tracing = True if flag is None else bool(flag)
        self.tracing = bool(tracing)
        self.reqlog = reqlog if reqlog is not None else RequestLog.from_environment()
        self.slow_ms = slow_ms if slow_ms is not None else slow_threshold_ms()
        # Admission control: keyed auth + per-principal rate limits.
        # ``auth=None`` defers to REPRO_SERVE_KEYS (no keyfile → open,
        # the pre-auth behavior every existing test and bench relies
        # on); ``auth=False`` forces open even with the env set (the
        # CLI's --no-auth).  The limiter rides along whenever auth is
        # on — buckets are keyed by principal — but can also be passed
        # explicitly for a key-less deterministic-limits setup.
        if auth is None:
            auth = ApiKeyAuthenticator.from_environment()
        self.auth: Optional[ApiKeyAuthenticator] = auth or None
        if limits is None and self.auth is not None:
            limits = RateLimiter(
                LimitsConfig.from_environment(),
                overrides=self.auth.limit_overrides(),
            )
        self.limits: Optional[RateLimiter] = limits or None
        self._rebootstraps = 0
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None
        # Follower mode: tail the primary's WAL instead of accepting
        # writes.  The gallery must be a read-only view — a follower
        # that could write the primary's shards would corrupt them.
        self._follow_dir = Path(follow) if follow is not None else None
        if self._follow_dir is not None and not gallery.readonly:
            raise ConfigurationError(
                "follower mode needs a read-only gallery "
                "(GalleryIndex(root, readonly=True))"
            )
        self._follower: Optional[WalFollower] = None
        self._follow_task: Optional[asyncio.Task] = None
        self._follow_lock = asyncio.Lock()
        self._follow_error: Optional[str] = None
        self._applied_lsn = 0
        poll_ms = env_float("REPRO_WAL_POLL_MS")
        self._poll_interval = (
            DEFAULT_WAL_POLL_MS if poll_ms is None else max(1.0, poll_ms)
        ) / 1000.0
        # Sharded serving: the pool spins up in start() (it needs the
        # running loop); workers <= 1 keeps the single-process path —
        # the bit-identical control arm of the worker sweep.
        pool_config = WorkerPoolConfig.from_environment()
        if workers is not None:
            pool_config = WorkerPoolConfig(
                workers=int(workers),
                rpc_timeout_s=pool_config.rpc_timeout_s,
                respawn_budget=pool_config.respawn_budget,
            )
        self._pool_config = pool_config
        self._matcher_factory = matcher_factory
        self._pool_batching = (
            batching
            if batching is not None
            else BatchingConfig.from_environment()
        )
        self.pool: Optional[WorkerPool] = None

    # ------------------------------------------------------------------
    # Replication (follower mode)
    # ------------------------------------------------------------------
    @property
    def role(self) -> str:
        """``"primary"`` (owns the gallery) or ``"follower"`` (tails a WAL)."""
        return "follower" if self._follow_dir is not None else "primary"

    async def _drain_follower(self) -> None:
        """Apply every WAL record completed so far (follower only).

        Serialized by a lock: the poll loop and an eager ``/healthz``
        drain must never interleave, or records could apply out of
        order.  Applied ops are forwarded to the worker pool's delta
        log so sharded reads see them too.
        """
        if self._follower is None:
            return
        async with self._follow_lock:
            for rec in self._follower.poll():
                applied = self.gallery.apply_wal_record(rec)
                self._applied_lsn = rec.lsn
                if applied is None:
                    continue
                op, device, identity, record = applied
                if self._live_pool is not None:
                    if op == "enroll":
                        await self.pool.apply_enroll(
                            device, identity,
                            record.template, record.descriptor,
                            lsn=rec.lsn,
                        )
                    else:
                        await self.pool.apply_delete(
                            device, identity, lsn=rec.lsn
                        )

    async def _follow_loop(self) -> None:
        """Poll the primary's WAL until cancelled.

        A :class:`WalError` meaning "fell behind retention" (the
        primary compacted past our cursor) is recoverable: the replica
        re-bootstraps from the gallery's on-disk snapshot — which by
        construction reflects at least everything the compacted WAL
        did — and resumes tailing from the retained log.  Any other
        failure stops replication and is surfaced in ``/v1/healthz``;
        the replica keeps answering reads from what it has applied.
        """
        while True:
            try:
                await self._drain_follower()
            except asyncio.CancelledError:
                raise
            except WalError as exc:
                if not await self._rebootstrap_follower(exc):
                    return
            except Exception as exc:  # noqa: BLE001 - keep serving reads
                self._follow_error = repr(exc)
                _log.error(
                    "follower replication stopped",
                    extra={"data": {"error": repr(exc),
                                    "applied_lsn": self._applied_lsn}},
                )
                return
            await asyncio.sleep(self._poll_interval)

    async def _rebootstrap_follower(self, cause: WalError) -> bool:
        """Reload the snapshot and restart the WAL tail after falling
        behind retention; ``True`` when replication can continue.

        The primary applies every write to its shards before the WAL
        compacts past it, so the on-disk snapshot is always at least as
        new as the oldest retained record — reloading it and re-tailing
        from the retained log's start converges (WAL application is
        idempotent).  Counted as ``replication.rebootstraps``.
        """
        try:
            async with self._follow_lock:
                records = self.gallery.rebootstrap()
                self._follower = WalFollower(self._follow_dir)
            self._rebootstraps += 1
            self._follow_error = None
            get_recorder().count("replication.rebootstraps")
            _log.warning(
                "follower re-bootstrapped from the gallery snapshot",
                extra={"data": {"cause": str(cause), "records": records,
                                "rebootstraps": self._rebootstraps}},
            )
            return True
        except Exception as exc:  # noqa: BLE001 - degrade to stale reads
            self._follow_error = repr(exc)
            _log.error(
                "follower re-bootstrap failed; replication stopped",
                extra={"data": {"cause": str(cause), "error": repr(exc),
                                "applied_lsn": self._applied_lsn}},
            )
            return False

    def _replication(self) -> dict:
        """The ``{role, applied_lsn, lag_records}`` health block."""
        if self._follower is None:
            return {
                "role": "primary",
                "applied_lsn": self.gallery.wal_last_lsn,
                "lag_records": 0,
                "rebootstraps": 0,
            }
        info = {
            "role": "follower",
            "applied_lsn": self._applied_lsn,
            "lag_records": self._follower.pending(),
            "rebootstraps": self._rebootstraps,
        }
        if self._follow_error is not None:
            info["error"] = self._follow_error
        return info

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port); raises until :meth:`start` succeeds."""
        if self._server is None or not self._server.sockets:
            raise ConfigurationError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def start(self) -> None:
        """Bind the listening socket and start the batch collector.

        With ``workers >= 2`` the sharded pool also spins up here.  The
        in-process batcher starts regardless: it is both the control arm
        (pool off) and the degraded fallback (pool broken), so falling
        back never needs new machinery mid-request.
        """
        if self._pool_config.workers >= 2 and self.pool is None:
            factory = self._matcher_factory
            if factory is None:
                # Fork-context workers inherit the closure; callers on
                # spawn-only platforms should pass a picklable factory.
                matcher = self.matcher
                factory = lambda: matcher  # noqa: E731
            self.pool = WorkerPool(
                self.gallery,
                factory,
                stats=self.stats,
                config=self._pool_config,
                batching=self._pool_batching,
            )
            await self.pool.start()
        if self._follow_dir is not None and self._follow_task is None:
            self._follower = WalFollower(self._follow_dir)
            self._follow_task = asyncio.create_task(self._follow_loop())
        await self.batcher.start()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self._host, port=self._port
            )
        except OSError as exc:
            await self.batcher.stop()
            if self.pool is not None:
                await self.pool.stop()
                self.pool = None
            raise ServerStartupError(
                f"could not bind {self._host}:{self._port}: {exc}"
            ) from exc
        host, port = self.address
        _log.info(
            "service listening",
            extra={"data": {"host": host, "port": port,
                            "enrolled": len(self.gallery),
                            "workers": self._pool_config.workers,
                            "role": self.role}},
        )

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI wraps this with signal handling)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Close the listener, drain the batcher, flush the request log.

        Also closes the gallery: dirty descriptor matrices flush and the
        WAL checkpoints on the way down — the deferred-write shutdown
        path.  :meth:`GalleryIndex.close` is idempotent, so an owner
        that closes the gallery again afterwards is fine.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._follow_task is not None:
            self._follow_task.cancel()
            try:
                await self._follow_task
            except asyncio.CancelledError:
                pass
            self._follow_task = None
        if self.pool is not None:
            await self.pool.stop()
            self.pool = None
        await self.batcher.stop()
        self.gallery.close()
        if self.reqlog is not None:
            self.reqlog.close()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    # A request too broken to route (bad request line,
                    # oversized body) still deserves an answer — and a
                    # request id, so the failure is attributable — but
                    # the connection state is unknown, so close after.
                    request_id = new_request_id()
                    await self._respond(
                        writer,
                        exc.status,
                        _error_envelope(exc.code, exc.message, request_id),
                        request_id=request_id,
                    )
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = await self._handle_request(
                    writer, method, path, headers, body
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop teardown cancels open keep-alive connections; ending
            # the handler normally keeps shutdown quiet.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Parse one request; ``None`` on a cleanly closed connection."""
        try:
            request_line = await reader.readline()
        except (ConnectionError, OSError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            # Drain the upload (bounded, with a deadline) before
            # answering: closing mid-upload RSTs the socket and the
            # client may never get to read the 413.
            await self._drain_body(reader, length)
            raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    @staticmethod
    async def _drain_body(
        reader: asyncio.StreamReader, length: int
    ) -> None:
        """Discard up to ``length`` declared body bytes, best-effort."""

        async def _drain() -> None:
            remaining = min(length, 8 * MAX_BODY_BYTES)
            while remaining > 0:
                chunk = await reader.read(min(65536, remaining))
                if not chunk:
                    return
                remaining -= len(chunk)

        try:
            await asyncio.wait_for(_drain(), timeout=5.0)
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass

    async def _handle_request(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
    ) -> bool:
        started = time.perf_counter()
        base_path, versioned = self._normalize_path(path)
        endpoint = self._endpoint_for(method, base_path)
        # Legacy unversioned paths still answer but are marked: clients
        # get an RFC 8594-style Deprecation header until they move to /v1.
        deprecated = not versioned and endpoint != "unknown"
        request_id = (
            sanitize_request_id(headers.get("x-request-id")) or new_request_id()
        )
        trace: Optional[TraceContext] = None
        token = None
        if self.tracing:
            trace = TraceContext(request_id=request_id, endpoint=endpoint)
            token = set_current_trace(trace)
        principal_name: Optional[str] = None
        retry_after: Optional[float] = None
        try:
            try:
                principal = self._admit(endpoint, headers)
                principal_name = principal.name
                if trace is not None:
                    trace.meta["principal"] = principal_name
                status, payload = await self._route(method, base_path, body)
            except _HttpError as exc:
                status = exc.status
                payload = _error_envelope(exc.code, exc.message, request_id)
            except ReproError as exc:
                status = _status_for(exc)
                payload = _error_envelope(
                    _code_for(exc), str(exc), request_id,
                    kind=type(exc).__name__,
                )
                # A 403 or 429 happens *after* authentication succeeded;
                # _admit stamps the principal on the exception so the
                # audit log can still attribute the refusal.
                principal_name = getattr(exc, "principal", principal_name)
                if trace is not None and principal_name is not None:
                    trace.meta["principal"] = principal_name
                if status == 503:
                    self.stats.record_overload()
                elif status == 504:
                    self.stats.record_deadline()
                elif status == 429:
                    retry_after = getattr(exc, "retry_after", 1.0)
            except Exception as exc:  # noqa: BLE001 - never kill the connection
                _log.warning(
                    "unhandled service error",
                    extra={"data": {"request_id": request_id, "path": path,
                                    "error": repr(exc)}},
                )
                status = 500
                payload = _error_envelope("internal", "internal error", request_id)
            if trace is not None:
                trace.finalize_batch_phases()
                with trace.phase("respond"):
                    keep_alive = await self._respond(
                        writer, status, payload,
                        request_id=request_id, deprecated=deprecated,
                        retry_after=retry_after,
                    )
            else:
                keep_alive = await self._respond(
                    writer, status, payload,
                    request_id=request_id, deprecated=deprecated,
                    retry_after=retry_after,
                )
        finally:
            if token is not None:
                reset_current_trace(token)
        elapsed = time.perf_counter() - started
        device = trace.meta.get("device") if trace is not None else None
        self.stats.record_request(endpoint, elapsed, status, device=device)
        self._audit(
            request_id, endpoint, method, path, status, elapsed, trace,
            principal=principal_name,
        )
        return keep_alive

    def _admit(self, endpoint: str, headers: Dict[str, str]) -> Principal:
        """Authenticate, authorize, and rate-limit one request.

        Runs before the body is even decoded — refused requests must be
        cheap.  With authentication disabled every caller is
        :data:`~repro.service.auth.ANONYMOUS` (full access, the pre-auth
        behavior); ``healthz`` is always open and never limited so
        liveness probes keep working without credentials.
        """
        principal = ANONYMOUS
        role = ENDPOINT_ROLES.get(endpoint, "admin")
        if self.auth is not None and role is not None:
            try:
                with _phase("auth"):
                    principal = self.auth.authenticate(headers)
                    self.auth.authorize(principal, endpoint)
            except AuthenticationError:
                self.stats.record_auth("unauthorized")
                raise
            except AuthorizationError as exc:
                self.stats.record_auth("forbidden")
                exc.principal = principal.name
                raise
            self.stats.record_auth("ok")
        if self.limits is not None and endpoint != "healthz":
            try:
                with _phase("limits"):
                    self.limits.check(principal.name, endpoint)
            except RateLimitExceeded as exc:
                self.stats.record_rate_limited(principal.name)
                exc.principal = principal.name
                raise
        return principal

    def _audit(
        self,
        request_id: str,
        endpoint: str,
        method: str,
        path: str,
        status: int,
        elapsed: float,
        trace: Optional[TraceContext],
        principal: Optional[str] = None,
    ) -> None:
        """Request-level accounting: audit line, slow log, trace counter."""
        latency_ms = elapsed * 1000.0
        slow = self.slow_ms is not None and latency_ms >= self.slow_ms
        if slow:
            self.stats.record_slow()
        recorder = get_recorder()
        if recorder.active and trace is not None:
            recorder.count("service.traces")
        if self.reqlog is not None:
            record = {
                "ts": round(time.time(), 3),
                "request_id": request_id,
                "endpoint": endpoint,
                "method": method,
                "path": path.split("?", 1)[0],
                "status": status,
                "latency_ms": round(latency_ms, 3),
                "gallery_size": len(self.gallery),
                "slow": slow,
                "principal": principal,
            }
            if trace is not None:
                timeline = trace.timeline()
                record["device"] = trace.meta.get("device")
                record["batch_ids"] = timeline["batch_ids"]
                record["queue_wait_ms"] = timeline["queue_wait_ms"]
                record["batch_wait_ms"] = timeline["batch_wait_ms"]
                record["match_ms"] = timeline["match_ms"]
                record["phases"] = timeline["phases"]
            self.reqlog.write(record)
        if slow:
            _log.warning(
                "slow request",
                extra={"data": (
                    trace.timeline() if trace is not None else {
                        "request_id": request_id,
                        "endpoint": endpoint,
                        "total_ms": round(latency_ms, 3),
                        "status": status,
                    }
                )},
            )

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload,
        request_id: Optional[str] = None,
        deprecated: bool = False,
        retry_after: Optional[float] = None,
    ) -> bool:
        if isinstance(payload, str):
            # Pre-rendered text body (the /metrics exposition).
            data = payload.encode("utf-8")
            content_type = EXPOSITION_CONTENT_TYPE
        else:
            data = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        extra = ""
        if request_id is not None:
            extra += f"X-Request-ID: {request_id}\r\n"
        if deprecated:
            extra += "Deprecation: true\r\n"
        if status == 401:
            extra += "WWW-Authenticate: Bearer\r\n"
        if status == 429 and retry_after is not None:
            # The limiter knows exactly when the next token lands; a
            # client sleeping that long succeeds on its next attempt.
            extra += f"Retry-After: {max(0.0, retry_after):.3f}\r\n"
        if status == 503:
            # Overload is transient by construction; tell well-behaved
            # clients when to come back instead of letting them hammer.
            extra += "Retry-After: 1\r\n"
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Status')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"{extra}"
            f"Connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + data)
            await writer.drain()
        except (ConnectionError, OSError):
            return False
        return True

    # ------------------------------------------------------------------
    # Routing and endpoint handlers
    # ------------------------------------------------------------------
    @staticmethod
    def _normalize_path(path: str) -> Tuple[str, bool]:
        """Strip the query string and the ``/v1`` version prefix.

        Returns ``(base_path, versioned)``; the router only ever sees
        base paths, so ``/v1/verify`` and legacy ``/verify`` share one
        handler (and one stats bucket) — the version only decides
        whether the response carries a ``Deprecation`` header.
        """
        path = path.split("?", 1)[0]
        if path == "/v1":
            return "/", True
        if path.startswith("/v1/"):
            return path[len("/v1"):], True
        return path, False

    @staticmethod
    def _endpoint_for(method: str, path: str) -> str:
        """Stats bucket for a request — known before the handler runs, so
        failed requests still land in the right per-endpoint tally.
        Expects a base path (see :meth:`_normalize_path`)."""
        if path == "/healthz":
            return "healthz"
        if path == "/stats":
            return "stats"
        if path == "/metrics":
            return "metrics"
        if path == "/verify":
            return "verify"
        if path == "/identify":
            return "identify"
        if path == "/enroll":
            return "enroll"
        if path.startswith("/enroll/"):
            return "delete" if method == "DELETE" else "enroll"
        if path == "/admin" or path.startswith("/admin/"):
            return "admin"
        return "unknown"

    async def _route(self, method: str, path: str, body: bytes) -> Tuple[int, object]:
        if path == "/healthz" and method == "GET":
            return 200, await self._handle_healthz()
        if path == "/stats" and method == "GET":
            return 200, self._handle_stats()
        if path == "/metrics" and method == "GET":
            return 200, self._handle_metrics()
        if path == "/enroll" and method == "POST":
            self._reject_write("enroll")
            return await self._handle_enroll(self._json_body(body))
        if path == "/verify" and method == "POST":
            return await self._handle_verify(self._json_body(body))
        if path == "/identify" and method == "POST":
            return await self._handle_identify(self._json_body(body))
        if path.startswith("/enroll/") and method == "DELETE":
            self._reject_write("delete")
            parts = [p for p in path.split("/") if p]
            if len(parts) != 3:
                raise _HttpError(400, "DELETE path must be /enroll/<device>/<identity>")
            _, device, identity = parts
            trace = current_trace()
            if trace is not None:
                trace.meta["device"] = device
            with _phase("gallery"):
                lsn = self.gallery.delete(identity, device=device)
            if self._live_pool is not None:
                await self.pool.apply_delete(device, identity, lsn=lsn)
            return 200, {"deleted": identity, "device": device}
        if path == "/admin/keys/reload" and method == "POST":
            return 200, self._handle_keys_reload()
        raise _HttpError(
            405 if path in ("/enroll", "/verify", "/identify",
                            "/healthz", "/stats", "/metrics",
                            "/admin/keys/reload")
            else 404,
            f"no route for {method} {path}",
        )

    @staticmethod
    def _json_body(body: bytes) -> dict:
        if not body:
            raise _HttpError(400, "request body must be a JSON object")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return payload

    @property
    def _live_pool(self) -> Optional[WorkerPool]:
        """The worker pool, when it is running and not degraded."""
        pool = self.pool
        if pool is not None and not pool.degraded:
            return pool
        return None

    def _reject_write(self, operation: str) -> None:
        """Follower replicas answer reads only; writes go to the primary."""
        if self.role == "follower":
            raise _HttpError(
                403,
                f"this replica is read-only; {operation} must go to "
                "the primary",
                code="read_only",
            )

    async def _handle_healthz(self) -> dict:
        # A follower drains whatever the WAL holds before reporting, so
        # `lag_records == 0` in the response means "caught up with every
        # record written when the probe arrived" — the CI smoke keys on
        # exactly that.
        if self._follower is not None and self._follow_error is None:
            try:
                await self._drain_follower()
            except WalError as exc:
                if await self._rebootstrap_follower(exc):
                    try:
                        await self._drain_follower()
                    except WalError as again:
                        self._follow_error = str(again)
        pool = self.pool
        return {
            "status": "ok",
            "enrolled": len(self.gallery),
            "uptime_seconds": round(time.time() - self.stats.started_at, 3),
            "workers": {
                "configured": pool.workers if pool is not None else 0,
                "alive": pool.alive_count if pool is not None else 0,
                "degraded": pool.degraded if pool is not None else False,
            },
            "replication": self._replication(),
        }

    def _handle_stats(self) -> dict:
        payload = self.stats.snapshot()
        payload["gallery"] = self.gallery.stats()
        payload["batching"]["config"] = {
            "enabled": self.batcher.config.enabled,
            "max_batch": self.batcher.config.max_batch,
            "max_wait_ms": self.batcher.config.max_wait_ms,
            "queue_depth": self.batcher.config.queue_depth,
            "timeout_s": self.batcher.config.timeout_s,
        }
        queued = self.batcher.queue_depth
        if self.pool is not None:
            queued += self.pool.queue_depth
        payload["batching"]["queued_jobs"] = queued
        payload["identify"]["default_mode"] = self.identify_mode
        payload["identify"]["candidate_k"] = self.candidate_k
        payload["threshold"] = self.threshold
        payload["tracing"] = self.tracing
        payload["replication"] = self._replication()
        payload["auth"] = self._auth_stats()
        return payload

    def _auth_stats(self) -> dict:
        """The ``auth``/``limits`` block for ``/stats`` and metrics."""
        info: dict = {
            "enabled": self.auth is not None,
            **self.stats.auth_snapshot(),
        }
        if self.auth is not None:
            info["principals"] = self.auth.principals
        if self.limits is not None:
            info["limits"] = self.limits.snapshot()
        return info

    def _handle_keys_reload(self) -> dict:
        """``POST /v1/admin/keys/reload`` — force a keyfile re-read now.

        404s when authentication is disabled: there is nothing to
        reload, and the route must not advertise itself on open
        servers.
        """
        if self.auth is None:
            raise _HttpError(404, "authentication is not enabled")
        count = self.auth.reload()
        if self.limits is not None:
            self.limits.set_overrides(self.auth.limit_overrides())
        return {"reloaded": True, "principals": count}

    def _handle_metrics(self) -> str:
        queued = self.batcher.queue_depth
        if self.pool is not None:
            queued += self.pool.queue_depth
        return render_exposition(
            self.stats,
            gallery_devices=self.gallery.stats().get("devices"),
            queue_depth=queued,
            corrupt_dropped=self.gallery.corrupt_dropped,
            wal=self.gallery.wal_stats(),
            replication=self._replication(),
            auth=self._auth_stats(),
        )

    async def _handle_enroll(self, payload: dict) -> Tuple[int, dict]:
        identity = self._required_str(payload, "identity")
        device = str(payload.get("device", "default"))
        trace = current_trace()
        if trace is not None:
            trace.meta["device"] = device
        with _phase("parse"):
            template = decode_template_field(payload)
        try:
            with _phase("gallery"):
                record = self.gallery.enroll(identity, template, device=device)
        except EnrollmentRejected as exc:
            self.stats.record_enroll_rejected()
            raise exc
        if self._live_pool is not None:
            # The response only returns after the owning worker acked,
            # so a follow-up verify against this identity cannot race a
            # not-yet-delivered delta.
            await self.pool.apply_enroll(
                device, identity, record.template, record.descriptor,
                lsn=record.lsn,
            )
        return 201, {
            "identity": record.identity,
            "device": record.device,
            "nfiq_level": record.nfiq_level,
            "nfiq_utility": round(record.nfiq_utility, 4),
            "minutiae": len(record.template),
        }

    async def _handle_verify(self, payload: dict) -> Tuple[int, dict]:
        identity = self._required_str(payload, "identity")
        device = str(payload.get("device", "default"))
        trace = current_trace()
        if trace is not None:
            trace.meta["device"] = device
        with _phase("parse"):
            probe = decode_template_field(payload)
        threshold = self._threshold(payload)
        with _phase("gallery"):
            record = self.gallery.get(identity, device=device)
        scores = None
        if self._live_pool is not None:
            try:
                with _phase("worker_dispatch"):
                    scores = await self.pool.score_keyed(
                        probe, device, [identity],
                        timeout_s=self._timeout(payload),
                    )
            except WorkerPoolDegradedError:
                scores = None
        if scores is None:
            scores = await self.batcher.score(
                [(probe, record.template)], timeout_s=self._timeout(payload)
            )
        score = float(scores[0])
        accepted = score >= threshold
        self.stats.record_decision(accepted)
        return 200, {
            "identity": identity,
            "device": device,
            "score": round(score, 4),
            "threshold": threshold,
            "decision": "accept" if accepted else "reject",
        }

    async def _handle_identify(self, payload: dict) -> Tuple[int, dict]:
        with _phase("parse"):
            probe = decode_template_field(payload)
        device = payload.get("device")
        if device is not None:
            device = str(device)
        trace = current_trace()
        if trace is not None and device is not None:
            trace.meta["device"] = device
        threshold = self._threshold(payload)
        max_candidates = payload.get("max_candidates", 10)
        if not isinstance(max_candidates, int) or max_candidates < 1:
            raise _HttpError(
                400, "max_candidates must be a positive integer",
                code="invalid_request",
            )
        mode = payload.get("mode", self.identify_mode)
        if mode not in IDENTIFY_MODES:
            raise _HttpError(
                400, f"mode must be one of {list(IDENTIFY_MODES)}, got {mode!r}",
                code="invalid_request",
            )
        candidate_k = payload.get("candidate_k", self.candidate_k)
        if not isinstance(candidate_k, int) or isinstance(candidate_k, bool) \
                or candidate_k < 1:
            raise _HttpError(
                400, "candidate_k must be a positive integer",
                code="invalid_request",
            )
        result = None
        if self._live_pool is not None:
            try:
                result = await self._identify_sharded(
                    probe, device, mode, candidate_k, max_candidates,
                    self._timeout(payload),
                )
            except WorkerPoolDegradedError:
                result = None
        if result is None:
            result = await self._identify_local(
                probe, device, mode, candidate_k, max_candidates,
                self._timeout(payload),
            )
        gallery_size, scored, ranked, prefilter_seconds, prefilter_ranks = result
        self.stats.record_identify(
            mode,
            candidates_scored=scored,
            prefilter_seconds=prefilter_seconds,
        )
        stage = "rescored" if mode == "two_stage" else "exhaustive"
        best = ranked[0] if ranked else None
        return 200, {
            "device": device,
            "threshold": threshold,
            "search": {
                "mode": mode,
                "gallery_size": gallery_size,
                "candidates_scored": scored,
                "candidate_k": candidate_k if mode == "two_stage" else None,
                "prefilter_seconds": round(prefilter_seconds, 6),
            },
            "candidates": [
                {
                    "identity": key.split("/", 1)[1] if device is None and "/" in key else key,
                    "device": (
                        key.split("/", 1)[0] if device is None and "/" in key
                        else device
                    ),
                    "score": round(score, 4),
                    "prefilter_rank": prefilter_ranks.get(key),
                    "stage": stage,
                }
                for key, score in ranked
            ],
            "best": (
                {
                    "identity": best[0],
                    "score": round(best[1], 4),
                    "decision": "accept" if best[1] >= threshold else "reject",
                }
                if best is not None
                else None
            ),
        }

    async def _identify_local(
        self, probe, device, mode, candidate_k, max_candidates, timeout_s
    ):
        """The single-process 1:N search — unchanged pre-pool behavior.

        Also the live fallback when the worker pool has degraded, which
        is why it stays a complete, self-contained path.
        """
        with _phase("gallery"):
            candidates = self.gallery.candidates(device=device)
        gallery_size = len(candidates)
        prefilter_seconds = 0.0
        prefilter_ranks: Dict[str, int] = {}
        if mode == "two_stage" and gallery_size:
            with _phase("prefilter"):
                prefilter_started = time.perf_counter()
                survivors = self.gallery.prefilter(
                    probe, device=device, k=candidate_k
                )
                prefilter_seconds = time.perf_counter() - prefilter_started
            prefilter_ranks = {c.key: c.rank for c in survivors}
            shortlist = sorted(prefilter_ranks)
        else:
            shortlist = sorted(candidates)
        scores = await self.batcher.score(
            [(probe, candidates[identity]) for identity in shortlist],
            timeout_s=timeout_s,
        )
        ranked = sorted(
            zip(shortlist, (float(s) for s in scores)),
            key=lambda item: (-item[1], item[0]),
        )[:max_candidates]
        return (
            gallery_size, len(shortlist), ranked,
            prefilter_seconds, prefilter_ranks,
        )

    async def _identify_sharded(
        self, probe, device, mode, candidate_k, max_candidates, timeout_s
    ):
        """Scatter/gather 1:N across the worker pool.

        Both modes reduce with the comparators the local path uses —
        ``(-score, key)`` for ranking, ``(distance, key)`` in the
        prefilter merge — so the response is bit-identical to
        :meth:`_identify_local`, deterministic tie-breaks included.
        """
        prefilter_seconds = 0.0
        prefilter_ranks: Dict[str, int] = {}
        if mode == "two_stage":
            vector = descriptor_vector(probe)
            with _phase("prefilter"):
                prefilter_started = time.perf_counter()
                gallery_size, survivors = await self.pool.prefilter(
                    vector, device, candidate_k
                )
                prefilter_seconds = time.perf_counter() - prefilter_started
            prefilter_ranks = {c.key: c.rank for c in survivors}
            shortlist = sorted(prefilter_ranks)
            with _phase("worker_dispatch"):
                scores = await self.pool.score_keyed(
                    probe, device, shortlist, timeout_s=timeout_s
                )
            ranked = sorted(
                zip(shortlist, (float(s) for s in scores)),
                key=lambda item: (-item[1], item[0]),
            )[:max_candidates]
            return (
                gallery_size, len(shortlist), ranked,
                prefilter_seconds, prefilter_ranks,
            )
        with _phase("worker_dispatch"):
            gallery_size, ranked = await self.pool.rank(
                probe, device, limit=max_candidates
            )
        # Exact mode scores the whole (sharded) gallery.
        return gallery_size, gallery_size, ranked, 0.0, prefilter_ranks

    # ------------------------------------------------------------------
    # Small request helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _required_str(payload: dict, field: str) -> str:
        value = payload.get(field)
        if not isinstance(value, str) or not value:
            raise _HttpError(400, f"request body needs a string {field!r} field")
        return value

    def _threshold(self, payload: dict) -> float:
        value = payload.get("threshold", self.threshold)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise _HttpError(400, "threshold must be a number")
        return float(value)

    def _timeout(self, payload: dict) -> Optional[float]:
        value = payload.get("timeout_s")
        if value is None:
            return None
        if not isinstance(value, (int, float)) or isinstance(value, bool) or value <= 0:
            raise _HttpError(400, "timeout_s must be a positive number")
        return float(value)


__all__ = [
    "VerificationServer",
    "ServerStartupError",
    "decode_template_field",
    "DEFAULT_THRESHOLD",
    "MAX_BODY_BYTES",
]
