"""Write-ahead log overhead: what each fsync policy costs per enrollment.

Usage::

    PYTHONPATH=src python benchmarks/bench_wal.py \
        --enrollments 200 --out wal_overhead_pr9.json

Enrolls the same burst of templates under each ``REPRO_WAL_SYNC``
policy — ``never``, ``rotate``, ``always`` — and records the
per-enrollment latency distribution of each arm.  ``always`` pays one
fsync per acked write (the durable-by-default arm); ``rotate`` and
``never`` show how much of the cost is the sync versus the
framing/serialization.

Also measures cold-restart replay: the ``always`` arm's gallery is
reopened with its shard directory deleted, so every enrollment comes
back from the log alone — the healing path timed end to end.

The record lands in ``benchmarks/output/`` as JSON with per-arm p50/p95
latencies and the replay timing.
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from _bench_common import OUTPUT_DIR
from repro.api import StudyConfig, build_collection
from repro.service.gallery import GalleryIndex

FINGER = "right_index"


def _templates(count: int):
    """``count`` enrollment templates cycled from a tiny collection."""
    collection = build_collection(StudyConfig(n_subjects=10, master_seed=1234))
    base = [
        collection.get(sid, FINGER, "D0", impression).template
        for sid in range(10)
        for impression in range(2)
    ]
    return [base[i % len(base)] for i in range(count)]


def _bench_arm(sync: str, templates, root: Path) -> dict:
    gallery = GalleryIndex(root, wal_sync=sync)
    latencies = []
    start = time.perf_counter()
    for i, template in enumerate(templates):
        t0 = time.perf_counter()
        gallery.enroll(f"id-{i:05d}", template, device="D0")
        latencies.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - start
    gallery.close()
    lat = np.asarray(latencies)
    return {
        "sync": sync,
        "enrollments": len(templates),
        "throughput_per_s": round(len(templates) / elapsed, 1),
        "p50_ms": round(float(np.percentile(lat, 50)) * 1000.0, 3),
        "p95_ms": round(float(np.percentile(lat, 95)) * 1000.0, 3),
        "mean_ms": round(float(lat.mean()) * 1000.0, 3),
        "wal": {
            k: v
            for k, v in (gallery.wal_stats() or {}).items()
            if k not in ("directory",)
        },
    }


def _bench_replay(root: Path) -> dict:
    """Cold restart with the shards gone: everything heals from the log."""
    shutil.rmtree(root / "D0")
    t0 = time.perf_counter()
    gallery = GalleryIndex(root)
    elapsed = time.perf_counter() - t0
    healed = len(gallery)
    gallery.close()
    return {
        "healed_records": healed,
        "replay_seconds": round(elapsed, 4),
        "records_per_s": round(healed / elapsed, 1) if elapsed else None,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--enrollments", type=int, default=200)
    parser.add_argument("--out", default="wal_overhead_pr9.json")
    args = parser.parse_args()

    templates = _templates(args.enrollments)
    record = {"arms": [], "replay": None}
    with tempfile.TemporaryDirectory(prefix="repro-bench-wal-") as tmp:
        tmp_path = Path(tmp)
        for sync in ("never", "rotate", "always"):
            arm = _bench_arm(sync, templates, tmp_path / f"gallery-{sync}")
            record["arms"].append(arm)
            print(
                f"{sync:>7}: {arm['throughput_per_s']:>8} enroll/s  "
                f"p50 {arm['p50_ms']} ms  p95 {arm['p95_ms']} ms"
            )
        record["replay"] = _bench_replay(tmp_path / "gallery-always")
        print(
            f"replay: {record['replay']['healed_records']} records healed "
            f"in {record['replay']['replay_seconds']}s"
        )

    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    out_path = OUTPUT_DIR / args.out
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
