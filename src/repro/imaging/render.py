"""Ridge-image rendering with planted minutiae (holographic model).

The quantitative pipeline of this reproduction is template-based, but
the *real* study's matcher consumed images.  This module closes that
loop: it renders fingerprint images whose ridge pattern actually
contains the master minutiae, using Larkin & Fletcher's "fingerprint as
a hologram" observation (PNAS 2007): a fingerprint is a 2-D fringe
pattern ``cos(psi)`` whose minutiae are *phase spirals* —

    psi(p) = psi_flow(p) + sum_i  s_i * atan2(p - m_i)

where ``psi_flow`` advances perpendicular to ridge flow at the ridge
frequency and each spiral term (s_i = ±1) injects exactly one ridge
ending or bifurcation at minutia position ``m_i``.  The
:mod:`repro.imaging.extraction` pipeline recovers those minutiae from
the image, which is what makes end-to-end image-domain experiments
possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..synthesis.master import RIDGE_PERIOD_MM, MasterFinger


@dataclass(frozen=True)
class RenderSettings:
    """Rendering parameters.

    Attributes
    ----------
    pixels_per_mm:
        Output resolution; 8 px/mm (~200 dpi) keeps tests fast while
        leaving ~3.7 px per ridge period of headroom above Nyquist.
    contrast:
        Fringe amplitude in (0, 1]; low-contrast devices wash out ridges.
    moisture:
        0.5 = ideal skin.  Dry skin (>0.5) breaks ridges with speckle;
        wet skin (<0.5) fills valleys (ink-blob look).
    noise_std:
        Additive Gaussian sensor noise on the normalized image.
    seed:
        Seed for the speckle/noise processes.
    """

    pixels_per_mm: float = 8.0
    contrast: float = 1.0
    moisture: float = 0.5
    noise_std: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.pixels_per_mm * RIDGE_PERIOD_MM < 2.5:
            raise ValueError(
                f"{self.pixels_per_mm} px/mm cannot resolve the "
                f"{RIDGE_PERIOD_MM} mm ridge period"
            )
        if not 0.0 < self.contrast <= 1.0:
            raise ValueError("contrast must be in (0, 1]")


@dataclass(frozen=True)
class RenderedImpression:
    """A rendered image plus its rendering ground truth.

    Attributes
    ----------
    image:
        (H, W) float array in [0, 1]; ridges dark (0), valleys light (1).
    minutiae_px:
        (n, 2) planted minutia positions in pixel coordinates (x, y).
    mask:
        Boolean foreground mask (the rendered pad area).
    pixels_per_mm:
        Geometry of the pixel grid.
    """

    image: np.ndarray
    minutiae_px: np.ndarray
    mask: np.ndarray
    pixels_per_mm: float


def render_finger(
    finger: MasterFinger,
    settings: RenderSettings = RenderSettings(),
    max_minutiae: Optional[int] = None,
) -> RenderedImpression:
    """Render a master finger as a ridge image with its minutiae planted.

    Parameters
    ----------
    finger:
        The master finger (orientation field + minutiae).
    settings:
        Resolution and degradation parameters.
    max_minutiae:
        Optionally plant only the first N minutiae (keeps tests fast and
        spirals well-separated at low resolutions).
    """
    ppm = settings.pixels_per_mm
    hw, hh = finger.pad_half_width, finger.pad_half_height
    width = int(np.ceil(2 * hw * ppm))
    height = int(np.ceil(2 * hh * ppm))
    xs_mm = (np.arange(width) - width / 2.0) / ppm
    ys_mm = (np.arange(height) - height / 2.0) / ppm
    gx, gy = np.meshgrid(xs_mm, ys_mm)

    theta = finger.fld.angle_at(gx, gy)
    # Flow phase: advance along the ridge normal at the ridge frequency.
    normal_x = np.cos(theta + np.pi / 2.0)
    normal_y = np.sin(theta + np.pi / 2.0)
    phase = (2.0 * np.pi / RIDGE_PERIOD_MM) * (gx * normal_x + gy * normal_y)

    minutiae = finger.minutiae[:max_minutiae] if max_minutiae else finger.minutiae
    planted = []
    rng = np.random.Generator(np.random.PCG64(settings.seed))
    for index, m in enumerate(minutiae):
        sign = 1.0 if index % 2 == 0 else -1.0
        phase = phase + sign * np.arctan2(gy - m.y, gx - m.x)
        planted.append(
            ((m.x + hw) * ppm, (m.y + hh) * ppm)
        )

    fringe = 0.5 + 0.5 * settings.contrast * np.cos(phase)

    # Skin-condition degradation.
    dryness = max(0.0, (settings.moisture - 0.5) / 0.5)
    wetness = max(0.0, (0.5 - settings.moisture) / 0.5)
    if dryness > 0:
        speckle = rng.random(fringe.shape) < 0.30 * dryness
        fringe = np.where(speckle, 1.0, fringe)  # broken ridges
    if wetness > 0:
        blobs = rng.random(fringe.shape) < 0.30 * wetness
        fringe = np.where(blobs, 0.0, fringe)  # smudged valleys
    if settings.noise_std > 0:
        fringe = fringe + rng.normal(0.0, settings.noise_std, fringe.shape)

    mask = (gx / hw) ** 2 + (gy / hh) ** 2 <= 1.0
    image = np.where(mask, np.clip(fringe, 0.0, 1.0), 1.0)
    return RenderedImpression(
        image=image,
        minutiae_px=np.array(planted, dtype=np.float64).reshape(-1, 2),
        mask=mask,
        pixels_per_mm=ppm,
    )


def render_sensed_impression(
    finger: MasterFinger,
    settings: RenderSettings = RenderSettings(),
    placement=None,
    warp=None,
    max_minutiae: Optional[int] = None,
) -> RenderedImpression:
    """Render what a *sensor* sees: the finger under placement and warp.

    The acquisition geometry of :mod:`repro.sensors` is applied in the
    image domain by inverse mapping: the intensity at sensed pixel ``p``
    is the finger-space pattern at ``placement^-1(warp^-1(p))``, with the
    warp inverse approximated to first order (``q - displacement(q)``,
    valid for the sub-millimetre warps the sensor models use).  This is
    how cross-device interoperability effects can be demonstrated
    *on images*: two devices' signature warps deform the same finger's
    image differently.

    Parameters
    ----------
    finger:
        The master finger.
    settings:
        Resolution and degradation parameters.
    placement:
        Optional :class:`~repro.sensors.distortion.RigidPlacement`.
    warp:
        Optional :class:`~repro.sensors.distortion.SmoothWarpField`
        (e.g. a device signature field).
    max_minutiae:
        Plant only the first N minutiae.
    """
    ppm = settings.pixels_per_mm
    hw, hh = finger.pad_half_width, finger.pad_half_height
    # Sensed frame: generous margin so placements stay in view.
    margin = 3.0
    width = int(np.ceil(2 * (hw + margin) * ppm))
    height = int(np.ceil(2 * (hh + margin) * ppm))
    xs_mm = (np.arange(width) - width / 2.0) / ppm
    ys_mm = (np.arange(height) - height / 2.0) / ppm
    gx, gy = np.meshgrid(xs_mm, ys_mm)
    sensed = np.column_stack([gx.ravel(), gy.ravel()])

    # Inverse geometry: sensed -> finger space.
    finger_pts = sensed
    if warp is not None:
        finger_pts = finger_pts - warp.displacement(finger_pts)
    if placement is not None:
        c, s = np.cos(-placement.rotation), np.sin(-placement.rotation)
        rot = np.array([[c, -s], [s, c]])
        finger_pts = (finger_pts - np.array([placement.dx, placement.dy])) @ rot.T
    fx = finger_pts[:, 0].reshape(gy.shape)
    fy = finger_pts[:, 1].reshape(gy.shape)

    theta = finger.fld.angle_at(fx, fy)
    normal_x = np.cos(theta + np.pi / 2.0)
    normal_y = np.sin(theta + np.pi / 2.0)
    phase = (2.0 * np.pi / RIDGE_PERIOD_MM) * (fx * normal_x + fy * normal_y)

    minutiae = finger.minutiae[:max_minutiae] if max_minutiae else finger.minutiae
    planted = []
    rng = np.random.Generator(np.random.PCG64(settings.seed))
    for index, m in enumerate(minutiae):
        sign = 1.0 if index % 2 == 0 else -1.0
        phase = phase + sign * np.arctan2(fy - m.y, fx - m.x)
        # Forward-map the minutia into sensed pixels for ground truth.
        pos = np.array([[m.x, m.y]])
        if placement is not None:
            pos = placement.apply(pos)
        if warp is not None:
            pos = warp.apply(pos)
        planted.append(
            (pos[0, 0] * ppm + width / 2.0, pos[0, 1] * ppm + height / 2.0)
        )

    fringe = 0.5 + 0.5 * settings.contrast * np.cos(phase)
    dryness = max(0.0, (settings.moisture - 0.5) / 0.5)
    wetness = max(0.0, (0.5 - settings.moisture) / 0.5)
    if dryness > 0:
        speckle = rng.random(fringe.shape) < 0.30 * dryness
        fringe = np.where(speckle, 1.0, fringe)
    if wetness > 0:
        blobs = rng.random(fringe.shape) < 0.30 * wetness
        fringe = np.where(blobs, 0.0, fringe)
    if settings.noise_std > 0:
        fringe = fringe + rng.normal(0.0, settings.noise_std, fringe.shape)

    mask = (fx / hw) ** 2 + (fy / hh) ** 2 <= 1.0
    image = np.where(mask, np.clip(fringe, 0.0, 1.0), 1.0)
    return RenderedImpression(
        image=image,
        minutiae_px=np.array(planted, dtype=np.float64).reshape(-1, 2),
        mask=mask,
        pixels_per_mm=ppm,
    )


def to_uint8(image: np.ndarray) -> np.ndarray:
    """Convert a [0, 1] float image to uint8 grayscale."""
    return (np.clip(image, 0.0, 1.0) * 255).astype(np.uint8)


__all__ = [
    "RenderSettings",
    "RenderedImpression",
    "render_finger",
    "render_sensed_impression",
    "to_uint8",
]
