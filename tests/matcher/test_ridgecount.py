"""The diverse second matcher."""

import numpy as np
import pytest

from repro.matcher.ridgecount import RidgeGeometryMatcher
from repro.matcher.types import Template


@pytest.fixture(scope="module")
def engine():
    return RidgeGeometryMatcher()


class TestBehaviour:
    def test_genuine_beats_impostor(
        self, engine, genuine_template_pair, impostor_template_pair
    ):
        genuine = engine.match(*genuine_template_pair)
        impostor = engine.match(*impostor_template_pair)
        assert genuine > impostor

    def test_scale_shared_with_bioengine(self, engine, genuine_template_pair):
        score = engine.match(*genuine_template_pair)
        assert 0.0 <= score <= 30.0

    def test_self_match_high(self, engine, genuine_template_pair):
        template = genuine_template_pair[0]
        assert engine.match(template, template) > 10

    def test_empty_template(self, engine, genuine_template_pair):
        empty = Template(minutiae=(), width_px=800, height_px=750)
        assert engine.match(empty, genuine_template_pair[0]) == 0.0

    def test_deterministic(self, engine, genuine_template_pair):
        assert engine.match(*genuine_template_pair) == engine.match(
            *genuine_template_pair
        )

    def test_fails_differently_from_bioengine(self, tiny_collection):
        # Diversity requirement: score vectors of the two engines over the
        # same comparisons must not be perfectly rank-correlated.
        from repro.matcher.engine import BioEngineMatcher
        from repro.stats.kendall import kendall_tau

        bio = BioEngineMatcher()
        ridge = RidgeGeometryMatcher()
        bio_scores, ridge_scores = [], []
        for sid in range(10):
            a = tiny_collection.get(sid, "right_index", "D0", 0).template
            b = tiny_collection.get(sid, "right_index", "D1", 1).template
            bio_scores.append(bio.match(b, a))
            ridge_scores.append(ridge.match(b, a))
        tau = kendall_tau(bio_scores, ridge_scores).tau
        assert tau < 0.999  # correlated is fine, identical is not
