"""Table 4 analysis module."""

import numpy as np
import pytest

from repro.core.kendall_analysis import (
    TABLE4_COLS,
    TABLE4_ROWS,
    asymmetry_count,
    insignificant_pairs,
    kendall_matrix,
    pvalue_matrix,
)


@pytest.fixture(scope="module")
def results(tiny_study):
    return kendall_matrix(tiny_study)


class TestStructure:
    def test_rows_are_livescan_only(self):
        assert TABLE4_ROWS == ("D0", "D1", "D2", "D3")
        assert TABLE4_COLS == ("D0", "D1", "D2", "D3", "D4")

    def test_all_cells_present(self, results):
        assert len(results) == 20

    def test_diagonal_is_self_correlation(self, results):
        for device in TABLE4_ROWS:
            assert results[(device, device)].tau == pytest.approx(1.0)

    def test_diagonal_p_extremely_small(self, results):
        for device in TABLE4_ROWS:
            assert results[(device, device)].p_value < 1e-4

    def test_pvalue_matrix_shape_and_content(self, results):
        matrix = pvalue_matrix(results)
        assert matrix.shape == (4, 5)
        assert matrix[0, 0] == results[("D0", "D0")].p_value


class TestClassification:
    def test_insignificant_excludes_diagonal(self, results):
        pairs = insignificant_pairs(results, alpha=0.01)
        assert all(row != col for row, col in pairs)

    def test_alpha_one_marks_nothing(self, results):
        # p-values never exceed 1, so alpha=1 leaves no insignificant cells.
        assert insignificant_pairs(results, alpha=1.0) == ()

    def test_asymmetry_count_range(self, results):
        count = asymmetry_count(results)
        assert 0 <= count <= 6  # C(4,2) unordered live-scan pairs

    def test_asymmetry_on_synthetic_results(self):
        from repro.stats.kendall import KendallResult

        def cell(p):
            return KendallResult(tau=0.5, p_value=p, n=10,
                                 concordant_minus_discordant=1.0)

        results = {}
        for row in TABLE4_ROWS:
            for col in TABLE4_COLS:
                results[(row, col)] = cell(1e-10)
        # Make exactly one asymmetric pair: (D0,D1) significant,
        # (D1,D0) not.
        results[("D1", "D0")] = cell(0.9)
        assert asymmetry_count(results) == 1
        assert ("D1", "D0") in insignificant_pairs(results)
