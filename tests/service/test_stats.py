"""ServiceStats snapshots, telemetry mirroring, and the manifest rollup."""

import threading

import pytest

from repro.runtime.manifest import RunManifest, render_manifest
from repro.runtime.telemetry import (
    enable_telemetry,
    get_recorder,
    set_recorder,
)
from repro.service.stats import (
    ENDPOINTS,
    LATENCY_WINDOW,
    PROBE_ENDPOINTS,
    ServiceStats,
)


@pytest.fixture(autouse=True)
def restore_recorder():
    previous = get_recorder()
    yield
    set_recorder(previous)


def _exercise(stats):
    """A plausible little serving session."""
    stats.record_request("enroll", 0.010, 201)
    stats.record_request("enroll", 0.012, 201)
    stats.record_request("verify", 0.020, 200)
    stats.record_request("verify", 0.025, 200)
    stats.record_request("identify", 0.060, 200)
    stats.record_decision(accepted=True)
    stats.record_decision(accepted=False)
    stats.record_enroll_rejected()
    stats.record_request("enroll", 0.002, 409)
    stats.record_batch(1)
    stats.record_batch(4)
    stats.record_batch(0, expired=2)


class TestCounters:
    def test_snapshot_shape(self):
        stats = ServiceStats()
        _exercise(stats)
        snap = stats.snapshot()
        assert snap["requests"]["enroll"] == 3
        assert snap["requests"]["verify"] == 2
        assert snap["requests"]["identify"] == 1
        assert snap["requests_total"] == 6
        assert snap["statuses"] == {"200": 3, "201": 2, "409": 1}
        assert snap["decisions"] == {"accepted": 1, "rejected": 1}
        assert snap["enroll_rejected"] == 1
        assert snap["batching"]["batches"] == 2
        assert snap["batching"]["jobs"] == 5
        assert snap["batching"]["expired_jobs"] == 2
        assert snap["batching"]["mean_size"] == 2.5
        assert snap["batching"]["max_size"] == 4

    def test_unknown_endpoint_counts_status_only(self):
        stats = ServiceStats()
        stats.record_request("unknown", 0.001, 404)
        snap = stats.snapshot()
        assert snap["requests_total"] == 0
        assert snap["statuses"] == {"404": 1}

    def test_all_expired_batch_keeps_distribution_clean(self):
        stats = ServiceStats()
        stats.record_batch(0, expired=3)
        assert stats.batches == 0
        assert stats.max_batch_size() == 0
        assert stats.expired_jobs == 3

    def test_latency_snapshot_quantiles(self):
        stats = ServiceStats()
        for ms in range(1, 101):
            stats.record_request("verify", ms / 1000.0, 200)
        latency = stats.latency_snapshot()
        assert set(latency) == {"verify"}
        window = latency["verify"]
        assert window["count"] == 100
        assert window["p50_ms"] == pytest.approx(50.5, abs=1.0)
        assert window["p95_ms"] <= window["p99_ms"] <= window["max_ms"]
        assert window["max_ms"] == pytest.approx(100.0)

    def test_batch_histogram_unit_bins(self):
        stats = ServiceStats()
        for size in (1, 1, 2, 4, 4, 4):
            stats.record_batch(size)
        hist = stats.batch_snapshot()["histogram"]
        assert sum(hist["counts"]) == 6
        assert len(hist["edges"]) == len(hist["counts"]) + 1

    def test_endpoints_cover_the_routing_table(self):
        assert set(ENDPOINTS) == {
            "enroll", "verify", "identify", "delete",
            "healthz", "stats", "metrics", "admin",
        }


class TestEdgeCases:
    def test_empty_window_has_no_quantiles(self):
        stats = ServiceStats()
        assert stats.latency_snapshot() == {}
        snap = stats.snapshot()
        assert snap["latency"] == {}
        assert snap["requests_total"] == 0

    def test_window_rolls_over_at_latency_window(self):
        stats = ServiceStats()
        # Fill past the window with slow requests, then flood with fast
        # ones: the slow ones must have fallen out entirely.
        for _ in range(10):
            stats.record_request("verify", 5.0, 200)
        for _ in range(LATENCY_WINDOW):
            stats.record_request("verify", 0.001, 200)
        window = stats.latency_snapshot()["verify"]
        assert window["count"] == LATENCY_WINDOW
        assert window["max_ms"] == pytest.approx(1.0)
        # Totals keep counting even though the window forgot.
        assert stats.snapshot()["requests"]["verify"] == LATENCY_WINDOW + 10

    def test_probe_endpoints_counted_but_not_timed(self):
        stats = ServiceStats()
        for endpoint in PROBE_ENDPOINTS:
            stats.record_request(endpoint, 0.5, 200)
        snap = stats.snapshot()
        assert snap["requests_total"] == len(PROBE_ENDPOINTS)
        assert snap["statuses"] == {"200": len(PROBE_ENDPOINTS)}
        assert snap["latency"] == {}
        assert stats.labeled_latency() == {}

    def test_probe_override_flag_wins(self):
        stats = ServiceStats()
        stats.record_request("verify", 0.1, 200, probe=True)
        assert stats.latency_snapshot() == {}
        stats.record_request("healthz", 0.1, 200, probe=False)
        assert "healthz" in stats.latency_snapshot()

    def test_concurrent_recording_from_threads(self):
        # The batcher's executor thread and the asyncio loop both record;
        # totals must come out exact, not torn.
        stats = ServiceStats()
        per_thread = 500

        def requests():
            for _ in range(per_thread):
                stats.record_request("verify", 0.002, 200)

        def batches():
            for i in range(per_thread):
                stats.record_batch(2, requests=1, batch_id=i + 1)
                stats.record_queue_wait(0.001)

        threads = [
            threading.Thread(target=requests),
            threading.Thread(target=requests),
            threading.Thread(target=batches),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snap = stats.snapshot()
        assert snap["requests"]["verify"] == 2 * per_thread
        assert snap["batching"]["batches"] == per_thread
        assert snap["batching"]["jobs"] == 2 * per_thread
        assert snap["batching"]["last_batch_id"] == per_thread
        assert stats.queue_wait_snapshot()["count"] == per_thread
        hist = stats.labeled_latency()[("verify", "")]
        assert hist["count"] == 2 * per_thread

    def test_slow_request_counter(self):
        stats = ServiceStats()
        stats.record_slow()
        stats.record_slow()
        assert stats.snapshot()["slow_requests"] == 2

    def test_last_batch_id_is_monotonic(self):
        stats = ServiceStats()
        stats.record_batch(2, batch_id=5)
        stats.record_batch(2, batch_id=3)  # late report never regresses it
        assert stats.batch_snapshot()["last_batch_id"] == 5


class TestTelemetryMirroring:
    def test_events_mirror_into_recorder(self):
        recorder = enable_telemetry()
        stats = ServiceStats()
        _exercise(stats)
        snap = recorder.metrics.snapshot()
        counters = snap["counters"]
        assert counters["service.requests"] == 6
        assert counters["service.requests.enroll"] == 3
        assert counters["service.accepted"] == 1
        assert counters["service.rejected"] == 1
        assert counters["service.enroll.rejected"] == 1
        assert counters["service.batches"] == 2
        assert counters["service.batched_jobs"] == 5
        assert counters["service.expired_jobs"] == 2
        assert snap["histograms"]["service.batch_size"]["max"] == 4.0
        assert snap["histograms"]["service.latency_seconds"]["count"] == 6

    def test_null_recorder_costs_nothing(self):
        stats = ServiceStats()
        _exercise(stats)  # must not raise with telemetry disabled
        assert stats.snapshot()["requests_total"] == 6


class TestManifestRollup:
    def _manifest(self, tiny_config):
        recorder = enable_telemetry()
        stats = ServiceStats()
        _exercise(stats)
        return RunManifest.from_recorder(recorder, tiny_config)

    def test_service_block(self, tiny_config):
        manifest = self._manifest(tiny_config)
        service = manifest.service
        assert service["requests"] == 6
        assert service["enroll"] == 3
        assert service["verify"] == 2
        assert service["identify"] == 1
        assert service["accepted"] == 1
        assert service["rejected"] == 1
        assert service["enroll_rejected"] == 1
        assert service["batches"] == 2
        assert service["batched_jobs"] == 5
        assert service["mean_batch_size"] == 2.5
        assert service["max_batch_size"] == 4
        assert service["mean_latency_ms"] > 0

    def test_round_trips_through_json(self, tiny_config, tmp_path):
        manifest = self._manifest(tiny_config)
        path = manifest.write(tmp_path / "manifest.json")
        assert RunManifest.load(path).service == manifest.service

    def test_render_includes_service_lines(self, tiny_config):
        text = render_manifest(self._manifest(tiny_config))
        assert "service: 6 requests (3 enroll, 2 verify, 1 identify)" in text
        assert "batching: 2 batches, 5 jobs (mean size 2.5, max 4)" in text

    def test_render_omits_service_when_idle(self, tiny_config):
        recorder = enable_telemetry()
        recorder.count("study.jobs")  # some non-service activity
        manifest = RunManifest.from_recorder(recorder, tiny_config)
        assert manifest.service["requests"] == 0
        assert "service:" not in render_manifest(manifest)
