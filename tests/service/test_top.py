"""`repro top`: delta arithmetic, frame rendering, and a live session."""

import io

from repro.service import (
    BatchingConfig,
    GalleryIndex,
    ServiceClient,
    ServiceRunner,
    VerificationServer,
)
from repro.service.top import (
    DISPLAY_ENDPOINTS,
    compute_deltas,
    render_frame,
    run_top,
    take_sample,
)

FINGER = "right_index"


def _sample(t, verify=0, total=None, errors=0, batches=0, jobs=0):
    requests = {endpoint: 0.0 for endpoint in DISPLAY_ENDPOINTS}
    requests["verify"] = float(verify)
    requests["healthz"] = 0.0
    return {
        "time": t,
        "requests": requests,
        "total": float(total if total is not None else verify),
        "errors": float(errors),
        "latency": {"verify": {"count": verify, "p50_ms": 5.0,
                               "p95_ms": 9.0, "p99_ms": 9.9, "max_ms": 10.0}}
        if verify else {},
        "batches": float(batches),
        "jobs": float(jobs),
        "queued_jobs": 0,
        "uptime_seconds": t,
        "enrolled": 3,
        "overloads": 0,
        "deadline_exceeded": 0,
        "slow_requests": 0,
    }


class TestComputeDeltas:
    def test_first_frame_is_all_zeros(self):
        deltas = compute_deltas(None, _sample(10.0, verify=100))
        assert deltas["qps"] == 0.0
        assert deltas["error_rate"] == 0.0
        assert deltas["endpoints"]["verify"]["qps"] == 0.0
        # Window quantiles still show, they are not rates.
        assert deltas["endpoints"]["verify"]["p95_ms"] == 9.0

    def test_qps_is_per_second_between_samples(self):
        prev = _sample(10.0, verify=100)
        cur = _sample(12.0, verify=150)
        deltas = compute_deltas(prev, cur)
        assert deltas["endpoints"]["verify"]["qps"] == 25.0
        assert deltas["qps"] == 25.0
        assert deltas["interval_s"] == 2.0

    def test_error_rate_is_fraction_of_interval_requests(self):
        prev = _sample(0.0, verify=100, errors=10)
        cur = _sample(1.0, verify=120, errors=15)
        assert compute_deltas(prev, cur)["error_rate"] == 0.25

    def test_mean_batch_size_over_the_interval(self):
        prev = _sample(0.0, verify=10, batches=5, jobs=20)
        cur = _sample(1.0, verify=20, batches=9, jobs=40)
        assert compute_deltas(prev, cur)["mean_batch_size"] == 5.0

    def test_counter_reset_clamps_to_zero(self):
        prev = _sample(0.0, verify=100)
        cur = _sample(1.0, verify=3)  # server restarted
        assert compute_deltas(prev, cur)["endpoints"]["verify"]["qps"] == 0.0

    def test_zero_division_guards(self):
        prev = _sample(0.0)
        cur = _sample(1.0)
        deltas = compute_deltas(prev, cur)
        assert deltas["error_rate"] == 0.0
        assert deltas["mean_batch_size"] == 0.0


class TestRenderFrame:
    def test_frame_lists_every_display_endpoint(self):
        cur = _sample(5.0, verify=10)
        frame = render_frame(cur, compute_deltas(None, cur), "localhost", 8799)
        for endpoint in DISPLAY_ENDPOINTS:
            assert endpoint in frame
        assert "localhost:8799" in frame
        assert "\x1b" not in frame  # rendering stays escape-free

    def test_missing_window_renders_dash(self):
        cur = _sample(5.0)  # no latency windows at all
        frame = render_frame(cur, compute_deltas(None, cur), "h", 1)
        assert "-" in frame

    def test_probe_endpoints_not_shown(self):
        assert "healthz" not in DISPLAY_ENDPOINTS
        assert "stats" not in DISPLAY_ENDPOINTS
        assert "metrics" not in DISPLAY_ENDPOINTS


class TestLiveSession:
    def test_two_frames_against_a_real_server(
        self, tmp_path, tiny_collection, matcher
    ):
        server = VerificationServer(
            GalleryIndex(tmp_path / "gallery"),
            matcher=matcher,
            port=0,
            batching=BatchingConfig(max_wait_ms=5.0),
        )
        with ServiceRunner(server) as (host, port):
            with ServiceClient(host, port) as client:
                client.enroll(
                    "subject-0",
                    tiny_collection.get(0, FINGER, "D0", 0).template,
                    device="D0",
                )
                client.verify(
                    "subject-0",
                    tiny_collection.get(0, FINGER, "D0", 1).template,
                    device="D0",
                )
            out = io.StringIO()
            code = run_top(
                host, port, interval_s=0.05, iterations=2, out=out, clear=False
            )
        assert code == 0
        text = out.getvalue()
        assert text.count("repro top —") == 2
        assert "verify" in text

    def test_take_sample_shape(self, tmp_path, tiny_collection, matcher):
        server = VerificationServer(
            GalleryIndex(tmp_path / "gallery"),
            matcher=matcher,
            port=0,
            batching=BatchingConfig(max_wait_ms=5.0),
        )
        with ServiceRunner(server) as (host, port):
            with ServiceClient(host, port) as client:
                client.enroll(
                    "subject-0",
                    tiny_collection.get(0, FINGER, "D0", 0).template,
                    device="D0",
                )
                sample = take_sample(client)
        assert sample["requests"]["enroll"] == 1.0
        assert sample["enrolled"] == 1
        assert sample["total"] >= 1.0

    def test_unreachable_server_exits_nonzero(self):
        out = io.StringIO()
        code = run_top("127.0.0.1", 1, interval_s=0.01, iterations=1, out=out)
        assert code == 1
        assert "repro top:" in out.getvalue()
