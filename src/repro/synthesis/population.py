"""Synthetic participant population.

:class:`Population` replaces the paper's 494 human volunteers.  Each
subject owns demographics, interaction traits and a set of master
fingers; everything is derived from a deterministic seed tree, so
subject 17's right index finger is identical across runs, processes and
machines for a given master seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from ..runtime.config import StudyConfig
from ..runtime.rng import SeedTree
from .master import MasterFinger, synthesize_master_finger
from .subject import (
    Demographics,
    SubjectTraits,
    demographic_histogram,
    sample_demographics,
    sample_traits,
)

#: Finger labels in capture order.  The paper analyzes the right "point"
#: (index) fingers; the second finger feeds the multi-finger-fusion
#: further-work experiment.
FINGER_LABELS: Tuple[str, ...] = ("right_index", "right_middle")

#: INCITS 378 finger-position codes for the labels above.
FINGER_POSITION_CODES: Dict[str, int] = {"right_index": 2, "right_middle": 3}


@dataclass(frozen=True)
class Subject:
    """One synthetic participant.

    Attributes
    ----------
    subject_id:
        Zero-based stable identifier.
    demographics:
        Age band and ethnicity (Figure 1).
    traits:
        Persistent interaction traits (skin, pressure, habituation).
    fingers:
        Mapping from finger label to its master finger.
    """

    subject_id: int
    demographics: Demographics
    traits: SubjectTraits
    fingers: Dict[str, MasterFinger]

    def finger(self, label: str) -> MasterFinger:
        """The master finger for ``label`` (raises KeyError if absent)."""
        return self.fingers[label]


class Population:
    """The full participant pool of one study run.

    Subjects are synthesized lazily and memoized, so constructing a
    Population is cheap and analyses that touch few subjects stay fast.

    Parameters
    ----------
    config:
        Study configuration (population size, seed, fingers per subject).
    seed_tree:
        Optional externally-rooted tree; defaults to a tree rooted at
        ``config.master_seed``.
    """

    def __init__(self, config: StudyConfig, seed_tree: SeedTree = None) -> None:
        self._config = config
        self._tree = seed_tree if seed_tree is not None else SeedTree(config.master_seed)
        self._cache: Dict[int, Subject] = {}

    @property
    def config(self) -> StudyConfig:
        """The study configuration this population was built for."""
        return self._config

    @property
    def n_subjects(self) -> int:
        """Number of participants."""
        return self._config.n_subjects

    @property
    def finger_labels(self) -> Tuple[str, ...]:
        """Finger labels captured for each subject, in capture order."""
        return FINGER_LABELS[: self._config.fingers_per_subject]

    @property
    def primary_finger(self) -> str:
        """The finger used for the headline score sets (right index)."""
        return FINGER_LABELS[0]

    def traits(self, subject_id: int) -> SubjectTraits:
        """Subject ``subject_id``'s interaction traits, fingers unsynthesized.

        Traits and demographics are drawn from their own seed-tree nodes,
        so they can be sampled without paying for master-finger synthesis
        — which is what makes content-addressed artifact digests (keyed
        partly on traits) cheap enough to compute for every subject on
        every run.
        """
        cached = self._cache.get(subject_id)
        if cached is not None:
            return cached.traits
        demographics, traits = self._sample_identity(subject_id)
        return traits

    def _sample_identity(self, subject_id: int):
        """Draw (demographics, traits) from the subject's seed node."""
        if not 0 <= subject_id < self.n_subjects:
            raise IndexError(
                f"subject_id {subject_id} outside population of {self.n_subjects}"
            )
        node = self._tree.child("subject", subject_id)
        demographics = sample_demographics(node.generator("demographics"))
        traits = sample_traits(node.generator("traits"), demographics)
        return demographics, traits

    def subject(self, subject_id: int) -> Subject:
        """Return (synthesizing on first access) subject ``subject_id``."""
        cached = self._cache.get(subject_id)
        if cached is not None:
            return cached

        demographics, traits = self._sample_identity(subject_id)
        node = self._tree.child("subject", subject_id)
        fingers: Dict[str, MasterFinger] = {}
        for label in self.finger_labels:
            fingers[label] = synthesize_master_finger(node.generator("finger", label))
        subject = Subject(
            subject_id=subject_id,
            demographics=demographics,
            traits=traits,
            fingers=fingers,
        )
        self._cache[subject_id] = subject
        return subject

    def __len__(self) -> int:
        return self.n_subjects

    def __iter__(self) -> Iterator[Subject]:
        for subject_id in range(self.n_subjects):
            yield self.subject(subject_id)

    def demographics_table(self) -> Dict[str, Dict[str, int]]:
        """Age/ethnicity histogram over the whole population (Figure 1)."""
        records = tuple(self.subject(i).demographics for i in range(self.n_subjects))
        return demographic_histogram(records)


__all__ = [
    "Subject",
    "Population",
    "FINGER_LABELS",
    "FINGER_POSITION_CODES",
]
