"""Keyed access control for the serving layer.

The serving stack answers anyone on the network unless told otherwise;
this module is the "told otherwise": API-key principals loaded from a
JSON keyfile, role-based authorization per endpoint, and hot reload so
key rotation never needs a restart.

Keyfile format (JSON, one object)::

    {
      "keys": [
        {
          "principal": "fleet-a",
          "key": "rk_...",
          "roles": ["read"],
          "limits": {"read": {"rate": 20, "burst": 40}, "quota": 5000}
        },
        ...
      ]
    }

``principal`` names the caller in stats, metrics, and the request audit
log; ``key`` is the bearer secret (``repro keys generate`` mints
``rk_``-prefixed url-safe tokens, but any non-empty string works);
``roles`` grant endpoint classes —

* ``read`` → ``/verify``, ``/identify``
* ``write`` → ``/enroll``, ``DELETE /enroll/...``
* ``admin`` → ``/stats``, ``/metrics``, ``POST /admin/keys/reload``

``/healthz`` stays open in every mode: liveness probes must not need a
secret (and :meth:`ServiceClient.wait_until_healthy` keeps working
unauthenticated).  The optional per-principal ``limits`` block
overrides the role-default token-bucket rates enforced by
:mod:`repro.service.limits`.

Requests present the key as ``Authorization: Bearer <key>`` or
``X-Api-Key: <key>``.  Lookup is constant-time: every presented key is
SHA-256 hashed and compared against every stored key's hash with
:func:`hmac.compare_digest`, with no early exit on match — the timing
of a rejection does not depend on how close the guess came.

Failures map onto the ``/v1`` error envelope: a missing, malformed, or
unknown credential raises :class:`AuthenticationError` (HTTP 401,
``unauthorized``); a valid key lacking the endpoint's role raises
:class:`AuthorizationError` (HTTP 403, ``forbidden``).

The keyfile is re-read when its mtime changes (checked at most once per
``reload_interval_s``), and ``POST /v1/admin/keys/reload`` forces a
reload immediately — rotation is: write the new keyfile, hit reload (or
just wait a beat), revoke the old entry.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
import secrets
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..runtime.config import env_str
from ..runtime.errors import ConfigurationError, PermanentError

#: The roles a keyfile entry may grant.
ROLES = ("read", "write", "admin")

#: Environment variable naming the keyfile (``--keys`` wins over it).
KEYS_ENV = "REPRO_SERVE_KEYS"

#: Prefix of generated keys — makes a leaked credential recognizably
#: ours in logs and scanners without revealing anything.
KEY_PREFIX = "rk_"

#: Role required per endpoint (stats-bucket name); ``None`` = open.
ENDPOINT_ROLES: Dict[str, Optional[str]] = {
    "verify": "read",
    "identify": "read",
    "enroll": "write",
    "delete": "write",
    "stats": "admin",
    "metrics": "admin",
    "admin": "admin",
    "healthz": None,
}


class AuthenticationError(PermanentError):
    """No credential, a malformed one, or an unknown key (HTTP 401)."""


class AuthorizationError(PermanentError):
    """A valid principal lacking the endpoint's role (HTTP 403)."""


class Principal:
    """One authenticated caller: a name, its roles, its limit overrides."""

    __slots__ = ("name", "roles", "limits")

    def __init__(
        self,
        name: str,
        roles: Tuple[str, ...],
        limits: Optional[dict] = None,
    ) -> None:
        self.name = name
        self.roles = frozenset(roles)
        self.limits = dict(limits) if limits else {}

    def can(self, role: Optional[str]) -> bool:
        """Whether this principal holds ``role`` (``None`` is always ok)."""
        return role is None or role in self.roles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Principal({self.name!r}, roles={sorted(self.roles)})"


#: The implicit caller when authentication is disabled: full access,
#: so an auth-off server behaves exactly like the pre-auth stack.
ANONYMOUS = Principal("anonymous", ROLES)


def _hash_key(key: str) -> bytes:
    """Fixed-length digest for constant-time comparison."""
    return hashlib.sha256(key.encode("utf-8")).digest()


def generate_key() -> str:
    """Mint one fresh API key (256 bits of urandom, url-safe)."""
    return KEY_PREFIX + secrets.token_urlsafe(32)


def parse_keyfile(text: str, source: str = "keyfile") -> List[dict]:
    """Validate a keyfile's JSON and return its raw ``keys`` entries.

    Raises :class:`~repro.runtime.errors.ConfigurationError` on any
    structural problem — a server must refuse to start half-secured.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{source}: invalid JSON: {exc}") from exc
    if not isinstance(data, dict) or not isinstance(data.get("keys"), list):
        raise ConfigurationError(
            f"{source}: expected an object with a 'keys' list"
        )
    seen_principals = set()
    entries: List[dict] = []
    for index, entry in enumerate(data["keys"]):
        where = f"{source}: keys[{index}]"
        if not isinstance(entry, dict):
            raise ConfigurationError(f"{where}: entry must be an object")
        principal = entry.get("principal")
        key = entry.get("key")
        roles = entry.get("roles", ["read"])
        if not isinstance(principal, str) or not principal:
            raise ConfigurationError(f"{where}: needs a 'principal' name")
        if principal in seen_principals:
            raise ConfigurationError(
                f"{where}: duplicate principal {principal!r}"
            )
        if not isinstance(key, str) or not key:
            raise ConfigurationError(f"{where}: needs a non-empty 'key'")
        if not isinstance(roles, list) or not roles or any(
            role not in ROLES for role in roles
        ):
            raise ConfigurationError(
                f"{where}: 'roles' must be a non-empty subset of {ROLES}"
            )
        limits = entry.get("limits", {})
        if not isinstance(limits, dict):
            raise ConfigurationError(f"{where}: 'limits' must be an object")
        seen_principals.add(principal)
        entries.append(
            {
                "principal": principal,
                "key": key,
                "roles": list(roles),
                "limits": limits,
            }
        )
    return entries


def write_keyfile(path: Path, entries: List[dict]) -> None:
    """Atomically persist keyfile entries (write-temp + rename)."""
    path = Path(path)
    payload = json.dumps({"keys": entries}, indent=2) + "\n"
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(payload)
    os.replace(tmp, path)
    try:
        os.chmod(path, 0o600)
    except OSError:  # pragma: no cover - exotic filesystems
        pass


def load_keyfile(path: Path) -> List[dict]:
    """Read + validate one keyfile ([] when the file does not exist)."""
    path = Path(path)
    if not path.exists():
        return []
    return parse_keyfile(path.read_text(), source=str(path))


def parse_auth_header(headers: Dict[str, str]) -> Optional[str]:
    """The presented API key, or ``None`` when no credential was sent.

    Accepts ``Authorization: Bearer <key>`` (case-insensitive scheme)
    and ``X-Api-Key: <key>``.  A credential that is *present but
    malformed* — wrong scheme, empty token — raises
    :class:`AuthenticationError` rather than degrading to anonymous:
    a caller who tried to authenticate should never be silently
    downgraded.
    """
    raw = headers.get("authorization")
    if raw is not None:
        scheme, _, token = raw.strip().partition(" ")
        token = token.strip()
        if scheme.lower() != "bearer" or not token:
            raise AuthenticationError(
                "malformed Authorization header; expected 'Bearer <key>'"
            )
        return token
    api_key = headers.get("x-api-key")
    if api_key is not None:
        api_key = api_key.strip()
        if not api_key:
            raise AuthenticationError("empty X-Api-Key header")
        return api_key
    return None


class ApiKeyAuthenticator:
    """Keyfile-backed authentication + role authorization, hot-reloading.

    Thread-safety note: reload swaps the whole lookup table in one
    assignment, and readers take a local reference first, so a scrape
    racing a rotation sees either the old table or the new one — never
    a torn mix.
    """

    def __init__(
        self,
        path: os.PathLike,
        reload_interval_s: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        self._path = Path(path)
        self._reload_interval = max(0.0, float(reload_interval_s))
        self._clock = clock
        self._mtime: Optional[float] = None
        self._checked_at: float = -1e18
        self._by_hash: Dict[bytes, Principal] = {}
        self.reload()

    @classmethod
    def from_environment(cls) -> Optional["ApiKeyAuthenticator"]:
        """An authenticator from ``REPRO_SERVE_KEYS``, or ``None``."""
        path = env_str(KEYS_ENV)
        return cls(path) if path else None

    @property
    def path(self) -> Path:
        return self._path

    @property
    def principals(self) -> List[str]:
        """The currently loaded principal names, sorted."""
        return sorted(p.name for p in self._by_hash.values())

    def limit_overrides(self) -> Dict[str, dict]:
        """Per-principal limit overrides from the keyfile."""
        return {
            p.name: p.limits for p in self._by_hash.values() if p.limits
        }

    def reload(self) -> int:
        """Re-read the keyfile now; returns the principal count.

        A keyfile that has gone *missing* keeps the last good table —
        rotation scripts replace the file atomically, but a transient
        gap must not fling the door open or slam it shut.  A keyfile
        that is present but malformed raises, so a bad rotation is
        loud.
        """
        try:
            stat = self._path.stat()
        except OSError:
            self._checked_at = self._clock()
            return len(self._by_hash)
        entries = parse_keyfile(self._path.read_text(), source=str(self._path))
        table: Dict[bytes, Principal] = {}
        for entry in entries:
            table[_hash_key(entry["key"])] = Principal(
                entry["principal"], tuple(entry["roles"]), entry["limits"]
            )
        self._by_hash = table
        self._mtime = stat.st_mtime
        self._checked_at = self._clock()
        return len(table)

    def maybe_reload(self) -> None:
        """Reload if the keyfile's mtime moved (rate-limited stat)."""
        now = self._clock()
        if now - self._checked_at < self._reload_interval:
            return
        self._checked_at = now
        try:
            mtime = self._path.stat().st_mtime
        except OSError:
            return
        if mtime != self._mtime:
            self.reload()

    def authenticate(self, headers: Dict[str, str]) -> Principal:
        """Resolve the request's credential to a :class:`Principal`.

        Raises :class:`AuthenticationError` (HTTP 401) when no
        credential was presented, the header is malformed, or the key
        matches no keyfile entry.
        """
        self.maybe_reload()
        token = parse_auth_header(headers)
        if token is None:
            raise AuthenticationError(
                "authentication required; present an API key as "
                "'Authorization: Bearer <key>' or 'X-Api-Key: <key>'"
            )
        presented = _hash_key(token)
        matched: Optional[Principal] = None
        # Constant-time sweep: compare against every stored hash, no
        # early exit, so response timing leaks nothing about near-misses.
        for stored, principal in self._by_hash.items():
            if hmac.compare_digest(stored, presented):
                matched = principal
        if matched is None:
            raise AuthenticationError("unknown API key")
        return matched

    @staticmethod
    def authorize(principal: Principal, endpoint: str) -> None:
        """Enforce the endpoint's role; raises on a missing grant."""
        role = ENDPOINT_ROLES.get(endpoint, "admin")
        if not principal.can(role):
            raise AuthorizationError(
                f"principal {principal.name!r} lacks the {role!r} role "
                f"required for {endpoint}"
            )


__all__ = [
    "ANONYMOUS",
    "ApiKeyAuthenticator",
    "AuthenticationError",
    "AuthorizationError",
    "ENDPOINT_ROLES",
    "KEYS_ENV",
    "KEY_PREFIX",
    "Principal",
    "ROLES",
    "generate_key",
    "load_keyfile",
    "parse_auth_header",
    "parse_keyfile",
    "write_keyfile",
]
