"""Documentation quality gates.

Every public module, class and function in the library must carry a
docstring — the deliverable says "doc comments on every public item",
and this meta-test enforces it so regressions cannot slip in.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

SKIP_MODULES = {"repro.__main__"}


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in SKIP_MODULES:
            continue
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module.__name__} lacks a module docstring"
    )


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_callables_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__} has undocumented public items: {undocumented}"
    )


def test_package_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name
