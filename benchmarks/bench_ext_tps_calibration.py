"""X2 — §II mitigation: Ross & Nadgir's thin-plate-spline inter-sensor
compensation.

Learns the D4 (ink) → D0 relative distortion from a training cohort's
genuine matches, applies it to held-out probes, and reports the genuine
score lift and FNMR drop at a fixed threshold.
"""

import numpy as np

from repro.api import (
    apply_tps_to_template,
    control_points_from_matches,
    fit_tps,
)

SOURCE, TARGET = "D4", "D0"
THRESHOLD = 7.5  # just above the impostor ceiling


def test_ext_tps_inter_sensor_compensation(benchmark, study, record_artifact):
    collection = study.collection()
    matcher = study.matcher()
    n = study.config.n_subjects
    n_train = max(8, n // 3)

    train_probes = [
        collection.get(sid, "right_index", SOURCE, 1).template
        for sid in range(n_train)
    ]
    train_galleries = [
        collection.get(sid, "right_index", TARGET, 0).template
        for sid in range(n_train)
    ]

    def learn_spline():
        src, dst = control_points_from_matches(
            matcher, train_probes, train_galleries, max_pairs=350
        )
        return fit_tps(src, dst, regularization=0.5)

    spline = benchmark(learn_spline)

    raw, compensated = [], []
    for sid in range(n_train, n):
        probe = collection.get(sid, "right_index", SOURCE, 1).template
        gallery = collection.get(sid, "right_index", TARGET, 0).template
        raw.append(matcher.match(probe, gallery))
        compensated.append(matcher.match(apply_tps_to_template(probe, spline), gallery))
    raw = np.array(raw)
    compensated = np.array(compensated)

    text = "\n".join(
        [
            f"X2: TPS compensation, {SOURCE} probes vs {TARGET} gallery "
            f"({n - n_train} held-out subjects)",
            f"  spline magnitude (RMS displacement): "
            f"{spline.bending_energy_proxy():.3f} mm",
            f"  mean genuine score   raw {raw.mean():6.2f}   "
            f"compensated {compensated.mean():6.2f}",
            f"  FNMR @ threshold {THRESHOLD}:  raw {np.mean(raw < THRESHOLD):.3f}   "
            f"compensated {np.mean(compensated < THRESHOLD):.3f}",
        ]
    )
    record_artifact(text)
    print("\n" + text)

    # Compensation learns a real warp and does not hurt on average.
    assert spline.bending_energy_proxy() > 0.05
    assert compensated.mean() >= raw.mean() - 0.3
