"""On-disk memoization of expensive study artifacts.

Paper-scale score generation takes minutes; the benchmark harness and the
analysis notebooks re-run the same configurations repeatedly.
:class:`ScoreCache` stores numpy arrays (and small JSON metadata) keyed by
the study-config fingerprint plus an artifact name, so a score set is
computed at most once per configuration.

The cache format is deliberately simple — one ``.npz`` file per artifact —
so a corrupt entry can be deleted by hand and nothing else is affected.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import zipfile
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from .errors import CacheError
from .telemetry import get_logger, get_recorder

_KEY_RE = re.compile(r"^[A-Za-z0-9._-]+$")

#: Everything np.load raises for a truncated/garbage entry: OSError for
#: I/O trouble, ValueError for non-npz bytes, BadZipFile for a file that
#: has a zip header but a mangled archive (the classic crashed-write).
_CORRUPT_ENTRY_ERRORS = (OSError, ValueError, zipfile.BadZipFile)

_log = get_logger("cache")


class ScoreCache:
    """A directory of named numpy-array bundles.

    Parameters
    ----------
    directory:
        Cache root; created on first write.  ``None`` produces a disabled
        cache whose :meth:`load` always misses — callers never need to
        branch on whether caching is configured.
    """

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        self._root: Optional[Path] = Path(directory) if directory is not None else None

    @property
    def enabled(self) -> bool:
        """Whether this cache persists anything."""
        return self._root is not None

    def _path_for(self, key: str) -> Path:
        if self._root is None:
            raise CacheError("cache is disabled; no path exists")
        if not _KEY_RE.match(key):
            raise CacheError(
                f"cache key {key!r} contains characters outside [A-Za-z0-9._-]"
            )
        return self._root / f"{key}.npz"

    def store(self, key: str, arrays: Dict[str, np.ndarray], meta: Optional[dict] = None) -> None:
        """Persist ``arrays`` (and optional JSON-able ``meta``) under ``key``.

        Writes are atomic (write to a temp file, then rename), so a
        crashed run never leaves a truncated entry behind.
        """
        if self._root is None:
            return
        path = self._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = dict(arrays)
        if meta is not None:
            payload["__meta__"] = np.frombuffer(
                json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
            )
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(handle, **payload)
            os.replace(tmp_name, path)
            get_recorder().count("cache.store")
        except OSError as exc:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise CacheError(f"could not write cache entry {key!r}: {exc}") from exc

    def load(self, key: str) -> Optional[Dict[str, np.ndarray]]:
        """Return the arrays stored under ``key``, or ``None`` on a miss.

        A corrupt entry is treated as a miss (and removed) rather than an
        error: the cache is an optimization, never a source of truth.
        """
        if self._root is None:
            return None
        path = self._path_for(key)
        if not path.exists():
            get_recorder().count("cache.miss")
            return None
        try:
            with np.load(path) as bundle:
                arrays = {name: bundle[name] for name in bundle.files}
        except _CORRUPT_ENTRY_ERRORS:
            recorder = get_recorder()
            recorder.count("cache.corrupt")
            recorder.count("cache.miss")
            _log.warning(
                "corrupt cache entry removed", extra={"data": {"key": key}}
            )
            try:
                path.unlink()
            except OSError:
                pass
            return None
        get_recorder().count("cache.hit")
        arrays.pop("__meta__", None)
        return arrays

    def load_meta(self, key: str) -> Optional[dict]:
        """Return the JSON metadata stored alongside ``key``, if any."""
        if self._root is None:
            return None
        path = self._path_for(key)
        if not path.exists():
            return None
        try:
            with np.load(path) as bundle:
                if "__meta__" not in bundle.files:
                    return None
                raw = bytes(bundle["__meta__"].tobytes())
        except _CORRUPT_ENTRY_ERRORS:
            get_recorder().count("cache.corrupt")
            return None
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None

    def invalidate(self, key: str) -> bool:
        """Remove ``key`` from the cache; returns whether it existed."""
        if self._root is None:
            return False
        path = self._path_for(key)
        if path.exists():
            path.unlink()
            return True
        return False

    def clear(self) -> int:
        """Remove every entry; returns the number of entries removed."""
        if self._root is None or not self._root.exists():
            return 0
        removed = 0
        for path in self._root.glob("*.npz"):
            path.unlink()
            removed += 1
        return removed


__all__ = ["ScoreCache"]
