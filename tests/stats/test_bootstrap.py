"""Bootstrap interval behaviour."""

import numpy as np
import pytest

from repro.stats.bootstrap import (
    BootstrapInterval,
    bootstrap_ci,
    bootstrap_fnmr_at_fmr,
)


class TestBootstrapCi:
    def test_interval_brackets_estimate(self, rng):
        data = rng.normal(5, 1, 300)
        interval = bootstrap_ci(data, np.mean, n_resamples=300, rng=rng)
        assert interval.low <= interval.estimate <= interval.high

    def test_interval_contains_true_mean_usually(self, rng):
        data = rng.normal(5, 1, 500)
        interval = bootstrap_ci(data, np.mean, n_resamples=400, rng=rng)
        assert interval.contains(5.0)

    def test_deterministic_with_seeded_rng(self):
        data = np.arange(50.0)
        a = bootstrap_ci(data, np.mean, rng=np.random.default_rng(7))
        b = bootstrap_ci(data, np.mean, rng=np.random.default_rng(7))
        assert (a.low, a.high) == (b.low, b.high)

    def test_width_shrinks_with_sample_size(self, rng):
        small = bootstrap_ci(rng.normal(0, 1, 30), np.mean, rng=rng)
        large = bootstrap_ci(rng.normal(0, 1, 3000), np.mean, rng=rng)
        assert large.width() < small.width()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([], np.mean)

    def test_bad_confidence(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1, 2, 3], np.mean, confidence=1.5)

    def test_bad_resamples(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1, 2, 3], np.mean, n_resamples=0)


class TestBootstrapFnmr:
    def test_interval_is_sane(self, rng):
        genuine = rng.normal(12, 3, 400)
        impostor = rng.normal(2, 1.5, 2000)
        interval = bootstrap_fnmr_at_fmr(
            genuine, impostor, 1e-3, n_resamples=100, rng=rng
        )
        assert 0.0 <= interval.low <= interval.estimate <= interval.high <= 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_fnmr_at_fmr([], [1.0], 0.01)


class TestIntervalObject:
    def test_contains(self):
        interval = BootstrapInterval(0.5, 0.4, 0.6, 0.95, 100)
        assert interval.contains(0.45)
        assert not interval.contains(0.7)
        assert interval.width() == pytest.approx(0.2)
