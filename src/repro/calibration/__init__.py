"""Interoperability mitigation methods (the paper's related/future work).

* Ross & Nadgir's thin-plate-spline inter-sensor compensation;
* Poh et al.'s GMM device inference p(d|q) and quality-dependent score
  normalization;
* score-level fusion across fingers and matchers.
"""

from .device_inference import DeviceInferenceModel, GaussianMixture
from .fusion import (
    FUSION_RULES,
    d_prime,
    max_fusion,
    min_fusion,
    product_fusion,
    separability_weights,
    sum_fusion,
    weighted_sum_fusion,
)
from .score_norm import (
    GOOD_QUALITY,
    POOR_QUALITY,
    LLRNormalizer,
    ZNormalizer,
    quality_band,
)
from .tps import (
    MIN_CONTROL_POINTS,
    ThinPlateSpline,
    apply_tps_to_template,
    control_points_from_matches,
    fit_tps,
)

__all__ = [
    "ThinPlateSpline",
    "fit_tps",
    "control_points_from_matches",
    "apply_tps_to_template",
    "MIN_CONTROL_POINTS",
    "DeviceInferenceModel",
    "GaussianMixture",
    "ZNormalizer",
    "LLRNormalizer",
    "quality_band",
    "GOOD_QUALITY",
    "POOR_QUALITY",
    "sum_fusion",
    "max_fusion",
    "min_fusion",
    "product_fusion",
    "weighted_sum_fusion",
    "d_prime",
    "separability_weights",
    "FUSION_RULES",
]
