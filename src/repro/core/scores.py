"""Score-set generation — the paper's Table 2 scenarios and Table 3 counts.

The four similarity-score scenarios (paper, Table 2):

* **DMG** — Device Match Genuine: same user, same device.  One score per
  subject per live-scan device (gallery = first interaction, probe = the
  second) → 494 x 4 = 1,976 at paper scale.
* **DMI** — Device Match Impostor: different users, same device, over
  all five devices, randomly subsampled to the budget (120,855).
* **DDMG** — Diverse Device Match Genuine: same user, different devices.
  "Having 5 collection sensors, we have 10 possible combinations with
  two match scores for each probe" → 20 ordered pairs per subject →
  9,880.
* **DDMI** — Diverse Device Match Impostor: different users, different
  devices, subsampled to 483,420.

A :class:`ScoreSet` stores parallel arrays so every score keeps its
provenance (subjects, devices, NFIQ levels of both sides) — the later
analyses (Tables 4–6, Figure 5) all slice on that provenance.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..runtime.config import StudyConfig
from ..runtime.errors import ConfigurationError
from ..runtime.progress import ProgressReporter
from ..runtime.rng import SeedTree
from ..runtime.telemetry import get_recorder
from ..sensors.protocol import Collection
from ..sensors.registry import DEVICE_ORDER, LIVESCAN_DEVICES

#: Scenario labels (Table 2 notation).
SCENARIOS = ("DMG", "DMI", "DDMG", "DDMI")


@dataclass(frozen=True)
class ScoreSet:
    """Similarity scores with full provenance.

    All arrays are parallel; ``device_*`` arrays hold device-id strings
    (``"D0"`` … ``"D4"``), ``nfiq_*`` the NFIQ level of each side's
    image.
    """

    scenario: str
    matcher_name: str
    scores: np.ndarray
    subject_gallery: np.ndarray
    subject_probe: np.ndarray
    device_gallery: np.ndarray
    device_probe: np.ndarray
    nfiq_gallery: np.ndarray
    nfiq_probe: np.ndarray

    # The filter API --------------------------------------------------
    # Every filter returns a new ScoreSet with the same scenario and
    # matcher labels and all provenance arrays restricted in lockstep,
    # so filters chain freely:
    #
    #     sets["DDMG"].for_pair("D0", "D1").with_max_nfiq(2)
    #     sets["DMG"].for_subjects(range(100)).select(custom_mask)
    #
    # ``select(mask)`` is the primitive; ``for_pair``, ``for_subjects``
    # and ``with_max_nfiq`` are named masks built on top of it.

    def __post_init__(self) -> None:
        n = len(self.scores)
        for name in ("subject_gallery", "subject_probe", "device_gallery",
                     "device_probe", "nfiq_gallery", "nfiq_probe"):
            if len(getattr(self, name)) != n:
                raise ConfigurationError(
                    f"ScoreSet field {name} has length "
                    f"{len(getattr(self, name))}, expected {n}"
                )

    def __len__(self) -> int:
        return len(self.scores)

    @property
    def is_genuine(self) -> bool:
        """Whether this scenario compares samples of the same person."""
        return self.scenario in ("DMG", "DDMG")

    def select(self, mask: np.ndarray) -> "ScoreSet":
        """A new ScoreSet restricted to ``mask`` (provenance preserved)."""
        return ScoreSet(
            scenario=self.scenario,
            matcher_name=self.matcher_name,
            scores=self.scores[mask],
            subject_gallery=self.subject_gallery[mask],
            subject_probe=self.subject_probe[mask],
            device_gallery=self.device_gallery[mask],
            device_probe=self.device_probe[mask],
            nfiq_gallery=self.nfiq_gallery[mask],
            nfiq_probe=self.nfiq_probe[mask],
        )

    def for_pair(self, gallery_device: str, probe_device: str) -> "ScoreSet":
        """Scores whose gallery/probe devices match the given pair."""
        mask = (self.device_gallery == gallery_device) & (
            self.device_probe == probe_device
        )
        return self.select(mask)

    def for_subjects(self, subjects: Sequence[int]) -> "ScoreSet":
        """Scores where *both* sides belong to the given subjects.

        The subject-axis counterpart of :meth:`for_pair`: genuine rows
        keep exactly the listed subjects; impostor rows survive only when
        gallery and probe subject are both listed.
        """
        wanted = np.asarray(list(subjects), dtype=np.int64)
        mask = np.isin(self.subject_gallery, wanted) & np.isin(
            self.subject_probe, wanted
        )
        return self.select(mask)

    def with_max_nfiq(self, max_level: int) -> "ScoreSet":
        """Scores where *both* images have NFIQ <= ``max_level``.

        This is the filter of Table 6 ("images with NFIQ quality < 3"
        means keeping levels 1 and 2 → ``max_level=2``).
        """
        mask = (self.nfiq_gallery <= max_level) & (self.nfiq_probe <= max_level)
        return self.select(mask)

    @staticmethod
    def assemble(
        parts: Sequence["ScoreSet"], positions: Sequence[np.ndarray]
    ) -> "ScoreSet":
        """Merge parts and restore original job order by position.

        ``positions[i]`` gives, for each row of ``parts[i]``, that row's
        index in the original job enumeration.  The positions need not
        form a contiguous range — rows of skipped batches are simply
        absent from the result — but must be pairwise disjoint for the
        ordering to be meaningful.
        """
        if len(parts) != len(positions):
            raise ConfigurationError(
                f"assemble got {len(parts)} parts but "
                f"{len(positions)} position arrays"
            )
        for part, pos in zip(parts, positions):
            if len(part) != len(pos):
                raise ConfigurationError(
                    f"assemble part has {len(part)} rows but "
                    f"{len(pos)} positions"
                )
        combined = ScoreSet.concatenate(parts)
        flat = np.concatenate(
            [np.asarray(pos, dtype=np.int64) for pos in positions]
        )
        order = np.argsort(flat, kind="stable")
        return combined.select(order)

    @staticmethod
    def concatenate(parts: Sequence["ScoreSet"]) -> "ScoreSet":
        """Merge score sets of the same scenario and matcher."""
        if not parts:
            raise ConfigurationError("cannot concatenate zero score sets")
        scenario = parts[0].scenario
        matcher = parts[0].matcher_name
        for p in parts[1:]:
            if p.scenario != scenario or p.matcher_name != matcher:
                raise ConfigurationError(
                    "cannot concatenate score sets from different scenarios"
                )
        return ScoreSet(
            scenario=scenario,
            matcher_name=matcher,
            scores=np.concatenate([p.scores for p in parts]),
            subject_gallery=np.concatenate([p.subject_gallery for p in parts]),
            subject_probe=np.concatenate([p.subject_probe for p in parts]),
            device_gallery=np.concatenate([p.device_gallery for p in parts]),
            device_probe=np.concatenate([p.device_probe for p in parts]),
            nfiq_gallery=np.concatenate([p.nfiq_gallery for p in parts]),
            nfiq_probe=np.concatenate([p.nfiq_probe for p in parts]),
        )


# ----------------------------------------------------------------------
# Pair enumeration (the Table 2/3 counting rules)
# ----------------------------------------------------------------------

#: A match job: (subject_g, device_g, set_g, subject_p, device_p, set_p).
MatchJob = Tuple[int, str, int, int, str, int]

#: Set index used for gallery images (the subject's first interaction).
GALLERY_SET = 0

#: Set index used for probe images (the second interaction).
PROBE_SET = 1


def probe_set_for(device_id: str) -> int:
    """Probe set index for a device (D4's probe is the slap impression)."""
    return PROBE_SET


def enumerate_dmg_jobs(n_subjects: int) -> List[MatchJob]:
    """Same-device genuine jobs: one per subject per live-scan device.

    The paper excludes D4 from DMG because participants contributed a
    single ten-print card collection (Table 3: 1,976 = 494 x 4).
    """
    return [
        (s, d, GALLERY_SET, s, d, PROBE_SET)
        for s in range(n_subjects)
        for d in LIVESCAN_DEVICES
    ]


def enumerate_ddmg_jobs(n_subjects: int) -> List[MatchJob]:
    """Cross-device genuine jobs: 20 ordered device pairs per subject.

    "10 possible combinations with two match scores for each probe"
    (Table 3: 9,880 = 494 x 20) — both orderings of each unordered pair.
    """
    jobs: List[MatchJob] = []
    for s in range(n_subjects):
        for dev_g, dev_p in itertools.permutations(DEVICE_ORDER, 2):
            jobs.append((s, dev_g, GALLERY_SET, s, dev_p, probe_set_for(dev_p)))
    return jobs


def sample_dmi_jobs(
    n_subjects: int, budget: int, tree: SeedTree
) -> List[MatchJob]:
    """Same-device impostor jobs, randomly subsampled to ``budget``.

    The paper limited impostor scores "to a random subset which is still
    sufficient for statistical confidence"; devices are sampled
    uniformly, subject pairs uniformly without replacement within the
    draw (duplicates are redrawn via oversampling).
    """
    rng = tree.generator("impostor-sample", "DMI")
    return _sample_impostor_jobs(rng, n_subjects, budget, cross_device=False)


def sample_ddmi_jobs(
    n_subjects: int, budget: int, tree: SeedTree
) -> List[MatchJob]:
    """Cross-device impostor jobs, randomly subsampled to ``budget``."""
    rng = tree.generator("impostor-sample", "DDMI")
    return _sample_impostor_jobs(rng, n_subjects, budget, cross_device=True)


def _sample_impostor_jobs(
    rng: np.random.Generator, n_subjects: int, budget: int, cross_device: bool
) -> List[MatchJob]:
    if n_subjects < 2:
        raise ConfigurationError("impostor jobs need at least two subjects")
    devices = list(DEVICE_ORDER)
    jobs: Dict[MatchJob, None] = {}
    # Oversample in rounds until the budget of *unique* jobs is met; the
    # space of possible jobs is vastly larger than any budget we use, so
    # two rounds nearly always suffice.
    while len(jobs) < budget:
        need = budget - len(jobs)
        draw = int(np.ceil(need * 1.2)) + 8
        subj_g = rng.integers(0, n_subjects, size=draw)
        subj_p = rng.integers(0, n_subjects, size=draw)
        dev_g_idx = rng.integers(0, len(devices), size=draw)
        if cross_device:
            shift = rng.integers(1, len(devices), size=draw)
            dev_p_idx = (dev_g_idx + shift) % len(devices)
        else:
            dev_p_idx = dev_g_idx
        for k in range(draw):
            if subj_g[k] == subj_p[k]:
                continue
            dev_g = devices[int(dev_g_idx[k])]
            dev_p = devices[int(dev_p_idx[k])]
            job = (
                int(subj_g[k]), dev_g, GALLERY_SET,
                int(subj_p[k]), dev_p, probe_set_for(dev_p),
            )
            if job not in jobs:
                jobs[job] = None
                if len(jobs) >= budget:
                    break
    return list(jobs)


def expected_counts(config: StudyConfig) -> Dict[str, int]:
    """The Table 3 row counts implied by a configuration."""
    n = config.n_subjects
    return {
        "DMG": n * len(LIVESCAN_DEVICES),
        "DDMG": n * len(DEVICE_ORDER) * (len(DEVICE_ORDER) - 1),
        "DMI": config.scaled_dmi_budget(),
        "DDMI": config.scaled_ddmi_budget(),
    }


# ----------------------------------------------------------------------
# Job execution
# ----------------------------------------------------------------------
def run_jobs(
    jobs: Sequence[MatchJob],
    collection: Collection,
    matcher,
    finger: str,
    scenario: str,
    progress: Optional[ProgressReporter] = None,
) -> ScoreSet:
    """Execute match jobs against a collection and assemble a ScoreSet.

    ``progress`` (optional) is updated once per job — pass a throttled
    :class:`~repro.runtime.progress.ProgressReporter` to surface
    per-scenario progress in long runs.
    """
    n = len(jobs)
    scores = np.empty(n, dtype=np.float64)
    subj_g = np.empty(n, dtype=np.int64)
    subj_p = np.empty(n, dtype=np.int64)
    dev_g = np.empty(n, dtype="<U2")
    dev_p = np.empty(n, dtype="<U2")
    nfiq_g = np.empty(n, dtype=np.int64)
    nfiq_p = np.empty(n, dtype=np.int64)
    for k, (sg, dg, setg, sp, dp, setp) in enumerate(jobs):
        gallery = collection.get(sg, finger, dg, setg)
        probe = collection.get(sp, finger, dp, setp)
        scores[k] = matcher.match(probe.template, gallery.template)
        subj_g[k] = sg
        subj_p[k] = sp
        dev_g[k] = dg
        dev_p[k] = dp
        nfiq_g[k] = gallery.nfiq
        nfiq_p[k] = probe.nfiq
        if progress is not None:
            progress.update()
    recorder = get_recorder()
    if recorder.active:
        recorder.count(f"matcher.invocations.{scenario}", n)
    return ScoreSet(
        scenario=scenario,
        matcher_name=getattr(matcher, "name", type(matcher).__name__),
        scores=scores,
        subject_gallery=subj_g,
        subject_probe=subj_p,
        device_gallery=dev_g,
        device_probe=dev_p,
        nfiq_gallery=nfiq_g,
        nfiq_probe=nfiq_p,
    )


#: A gallery identity: (subject, device, set) — one template per key.
GalleryKey = Tuple[int, str, int]


def group_jobs_gallery_major(
    jobs: Sequence[MatchJob],
) -> List[Tuple[GalleryKey, List[int]]]:
    """Group job indices by the gallery template they compare against.

    Returns ``[(gallery_key, [job_index, ...]), ...]`` in order of first
    appearance, so regrouped execution stays deterministic and per-batch
    results can be scattered back into the original job order.
    """
    groups: Dict[GalleryKey, List[int]] = {}
    for k, job in enumerate(jobs):
        groups.setdefault((job[0], job[1], job[2]), []).append(k)
    return list(groups.items())


def run_jobs_batched(
    jobs: Sequence[MatchJob],
    collection,
    matcher,
    finger: str,
    scenario: str,
    progress: Optional[ProgressReporter] = None,
) -> ScoreSet:
    """Batched :func:`run_jobs`: gallery-major regrouping + ``match_many``.

    Jobs are regrouped so every probe facing the same gallery template is
    scored in a single ``matcher.match_many`` call, which pays for the
    gallery's descriptors and alignment frames once per batch.  Scores
    are scattered back into the original job order, so the returned
    :class:`ScoreSet` is row-for-row identical — provenance *and* score
    values — to what :func:`run_jobs` produces (the scalar path is the
    parity oracle).  Matchers without ``match_many`` fall back to the
    scalar call per job.
    """
    n = len(jobs)
    scores = np.empty(n, dtype=np.float64)
    subj_g = np.empty(n, dtype=np.int64)
    subj_p = np.empty(n, dtype=np.int64)
    dev_g = np.empty(n, dtype="<U2")
    dev_p = np.empty(n, dtype="<U2")
    nfiq_g = np.empty(n, dtype=np.int64)
    nfiq_p = np.empty(n, dtype=np.int64)
    match_many = getattr(matcher, "match_many", None)
    for (sg, dg, setg), indices in group_jobs_gallery_major(jobs):
        gallery = collection.get(sg, finger, dg, setg)
        probes = [
            collection.get(jobs[k][3], finger, jobs[k][4], jobs[k][5])
            for k in indices
        ]
        if match_many is not None:
            batch = match_many(
                [impression.template for impression in probes], gallery.template
            )
        else:
            batch = [
                matcher.match(impression.template, gallery.template)
                for impression in probes
            ]
        for pos, k in enumerate(indices):
            scores[k] = batch[pos]
            subj_g[k] = sg
            subj_p[k] = jobs[k][3]
            dev_g[k] = dg
            dev_p[k] = jobs[k][4]
            nfiq_g[k] = gallery.nfiq
            nfiq_p[k] = probes[pos].nfiq
        if progress is not None:
            progress.update(len(indices))
    recorder = get_recorder()
    if recorder.active:
        recorder.count(f"matcher.invocations.{scenario}", n)
    return ScoreSet(
        scenario=scenario,
        matcher_name=getattr(matcher, "name", type(matcher).__name__),
        scores=scores,
        subject_gallery=subj_g,
        subject_probe=subj_p,
        device_gallery=dev_g,
        device_probe=dev_p,
        nfiq_gallery=nfiq_g,
        nfiq_probe=nfiq_p,
    )


__all__ = [
    "ScoreSet",
    "SCENARIOS",
    "MatchJob",
    "GalleryKey",
    "GALLERY_SET",
    "PROBE_SET",
    "probe_set_for",
    "enumerate_dmg_jobs",
    "enumerate_ddmg_jobs",
    "sample_dmi_jobs",
    "sample_ddmi_jobs",
    "expected_counts",
    "run_jobs",
    "run_jobs_batched",
    "group_jobs_gallery_major",
]
