"""repro — reproduction of "Interoperability in Fingerprint Recognition:
A Large-Scale Empirical Study" (Lugini, Marasco, Cukic & Gashi, DSN 2013).

The paper measures how fingerprint match scores and error rates degrade
when enrollment and verification use *different* capture devices.  This
library rebuilds the entire measurement apparatus — synthetic
fingerprints, parameterized sensor models for the study's five capture
sources, an NFIQ-style quality assessor, a minutiae matcher — and the
study engine that regenerates every table and figure of the paper.

Quick start::

    from repro import InteroperabilityStudy, StudyConfig

    study = InteroperabilityStudy(StudyConfig(n_subjects=60))
    score_sets = study.score_sets()         # DMG / DMI / DDMG / DDMI
    table5 = study.fnmr_matrix(1e-4)        # FNMR @ FMR 0.01%
    table4 = study.kendall_matrix()         # rank-correlation p-values
"""

from .core import FnmrPredictor, InteroperabilityStudy, ScoreSet
from .matcher import BioEngineMatcher, Minutia, RidgeGeometryMatcher, Template
from .pipeline import (
    EnrolledRecord,
    InteropAwareVerifier,
    TemplateDatabase,
    Verifier,
)
from .quality import QualityFeatures, nfiq_level
from .runtime import (
    ReproError,
    RunManifest,
    ScoreCache,
    SeedTree,
    StudyConfig,
    configure_logging,
    disable_telemetry,
    enable_telemetry,
    get_recorder,
)
from .sensors import (
    DEVICE_ORDER,
    DEVICE_PROFILES,
    LIVESCAN_DEVICES,
    Impression,
    InkCardSensor,
    OpticalSensor,
    build_sensor,
)
from .synthesis import Population

__version__ = "1.0.0"

__all__ = [
    "InteroperabilityStudy",
    "ScoreSet",
    "FnmrPredictor",
    "TemplateDatabase",
    "EnrolledRecord",
    "Verifier",
    "InteropAwareVerifier",
    "StudyConfig",
    "SeedTree",
    "ScoreCache",
    "ReproError",
    "RunManifest",
    "enable_telemetry",
    "disable_telemetry",
    "get_recorder",
    "configure_logging",
    "Population",
    "BioEngineMatcher",
    "RidgeGeometryMatcher",
    "Template",
    "Minutia",
    "QualityFeatures",
    "nfiq_level",
    "Impression",
    "OpticalSensor",
    "InkCardSensor",
    "build_sensor",
    "DEVICE_ORDER",
    "DEVICE_PROFILES",
    "LIVESCAN_DEVICES",
    "__version__",
]
