"""Cross-resolution matching.

All five study devices scan at 500 dpi, but the matcher must not depend
on that: INCITS templates carry their resolution, and the matcher works
in millimetres.  A template resampled to a different dpi is the same
finger and must score (nearly) the same.
"""

import numpy as np
import pytest

from repro.matcher import BioEngineMatcher
from repro.matcher.types import Minutia, Template


def _resample(template: Template, new_dpi: int) -> Template:
    """Re-express a template at a different resolution (same geometry)."""
    factor = new_dpi / template.resolution_dpi
    minutiae = tuple(
        Minutia(
            x=m.x * factor,
            y=m.y * factor,
            angle=m.angle,
            kind=m.kind,
            quality=m.quality,
        )
        for m in template.minutiae
    )
    return Template(
        minutiae=minutiae,
        width_px=int(np.ceil(template.width_px * factor)),
        height_px=int(np.ceil(template.height_px * factor)),
        resolution_dpi=new_dpi,
    )


@pytest.fixture(scope="module")
def engine():
    return BioEngineMatcher()


class TestCrossResolution:
    @pytest.mark.parametrize("dpi", [250, 1000])
    def test_resampled_probe_scores_identically(
        self, engine, genuine_template_pair, dpi
    ):
        probe, gallery = genuine_template_pair
        base = engine.match(probe, gallery)
        resampled = engine.match(_resample(probe, dpi), gallery)
        assert resampled == pytest.approx(base, abs=0.5)

    def test_both_sides_resampled(self, engine, genuine_template_pair):
        probe, gallery = genuine_template_pair
        base = engine.match(probe, gallery)
        both = engine.match(_resample(probe, 250), _resample(gallery, 1000))
        assert both == pytest.approx(base, abs=0.5)

    def test_mm_positions_invariant_under_resampling(self, genuine_template_pair):
        template = genuine_template_pair[0]
        resampled = _resample(template, 250)
        np.testing.assert_allclose(
            template.positions_mm(), resampled.positions_mm(), atol=1e-9
        )

    def test_impostor_stays_impostor_across_dpi(
        self, engine, impostor_template_pair
    ):
        probe, gallery = impostor_template_pair
        assert engine.match(_resample(probe, 1000), gallery) < 8.5
