"""FMR/FNMR operating-point math."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.roc import (
    RocCurve,
    det_points,
    equal_error_rate,
    fmr_at_threshold,
    fnmr_at_fmr,
    fnmr_at_threshold,
    roc_curve,
    threshold_at_fmr,
)


class TestPointRates:
    def test_fmr_counts_at_or_above(self):
        assert fmr_at_threshold([1, 2, 3, 4], 3) == 0.5

    def test_fnmr_counts_strictly_below(self):
        assert fnmr_at_threshold([1, 2, 3, 4], 3) == 0.5

    def test_fmr_zero_when_threshold_above_max(self):
        assert fmr_at_threshold([1, 2, 3], 10) == 0.0

    def test_fnmr_zero_when_threshold_below_min(self):
        assert fnmr_at_threshold([5, 6], 1) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fmr_at_threshold([], 1)
        with pytest.raises(ValueError):
            fnmr_at_threshold([], 1)

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            fmr_at_threshold([1, np.inf], 1)


class TestThresholdAtFmr:
    def test_realized_fmr_never_exceeds_target(self):
        imp = np.array([0.1, 0.5, 1.0, 2.0, 3.0, 5.0, 6.0, 6.5, 6.9, 7.0])
        for target in (0.0, 0.1, 0.25, 0.5, 1.0):
            threshold = threshold_at_fmr(imp, target)
            assert fmr_at_threshold(imp, threshold) <= target + 1e-12

    def test_zero_target_excludes_all_impostors(self):
        imp = [1.0, 2.0, 3.0]
        threshold = threshold_at_fmr(imp, 0.0)
        assert fmr_at_threshold(imp, threshold) == 0.0

    def test_target_one_admits_everything(self):
        imp = [1.0, 2.0, 3.0]
        threshold = threshold_at_fmr(imp, 1.0)
        assert fmr_at_threshold(imp, threshold) == 1.0

    def test_handles_ties(self):
        imp = [5.0] * 10
        threshold = threshold_at_fmr(imp, 0.5)
        # All tied: either all or none can pass; never more than target.
        assert fmr_at_threshold(imp, threshold) <= 0.5

    def test_bad_target(self):
        with pytest.raises(ValueError):
            threshold_at_fmr([1.0], 1.5)

    @given(
        st.lists(st.floats(min_value=0, max_value=10), min_size=3, max_size=80),
        st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_fmr_bounded(self, impostors, target):
        threshold = threshold_at_fmr(impostors, target)
        assert fmr_at_threshold(impostors, threshold) <= target + 1e-9


class TestFnmrAtFmr:
    def test_separated_populations(self):
        genuine = [10, 11, 12, 13]
        impostor = [1, 2, 3, 4]
        assert fnmr_at_fmr(genuine, impostor, 0.0) == 0.0

    def test_overlapping_populations(self):
        genuine = [2, 8, 9, 10]
        impostor = [1, 2, 3, 4]
        # FMR 0 forces threshold above 4, losing the genuine score of 2.
        assert fnmr_at_fmr(genuine, impostor, 0.0) == 0.25


class TestRocCurve:
    def test_monotonic_rates(self):
        rng = np.random.default_rng(1)
        genuine = rng.normal(10, 2, 200)
        impostor = rng.normal(2, 2, 200)
        curve = roc_curve(genuine, impostor)
        assert np.all(np.diff(curve.fmr) <= 1e-12)
        assert np.all(np.diff(curve.fnmr) >= -1e-12)

    def test_eer_for_symmetric_overlap(self):
        rng = np.random.default_rng(2)
        genuine = rng.normal(6, 1, 4000)
        impostor = rng.normal(4, 1, 4000)
        eer = equal_error_rate(genuine, impostor)
        # Analytic EER for two unit-variance Gaussians 2 apart: Phi(-1).
        assert eer == pytest.approx(0.1587, abs=0.02)

    def test_eer_zero_for_disjoint(self):
        assert equal_error_rate([10, 11, 12], [1, 2, 3]) == pytest.approx(
            0.0, abs=0.01
        )

    def test_grid_mode(self):
        curve = roc_curve([5, 6, 7], [1, 2, 3], n_points=50)
        assert len(curve.thresholds) == 50

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            RocCurve(np.zeros(3), np.zeros(2), np.zeros(3))


class TestDetPoints:
    def test_shapes_and_monotonicity(self):
        rng = np.random.default_rng(3)
        genuine = rng.normal(8, 2, 500)
        impostor = rng.normal(2, 2, 500)
        targets, fnmrs = det_points(genuine, impostor, [0.001, 0.01, 0.1])
        assert len(targets) == len(fnmrs) == 3
        # Looser FMR targets can only lower (or keep) the FNMR.
        assert fnmrs[0] >= fnmrs[1] >= fnmrs[2]
