"""Progress reporter throttling and robustness."""

import io

import pytest

from repro.runtime.progress import NullProgress, ProgressReporter, format_eta


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestProgressReporter:
    def test_counts(self):
        reporter = ProgressReporter(total=10, stream=None)
        reporter.update(3)
        reporter.update(2)
        assert reporter.count == 5

    def test_negative_update_rejected(self):
        reporter = ProgressReporter(stream=None)
        with pytest.raises(ValueError):
            reporter.update(-1)

    def test_throttling(self):
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(
            total=100, stream=stream, min_interval=1.0, clock=clock
        )
        for __ in range(50):
            reporter.update()  # same instant: only the first emits
        assert reporter.emissions == 1
        clock.t = 2.0
        reporter.update()
        assert reporter.emissions == 2

    def test_finish_forces_emission(self):
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(total=4, stream=stream, clock=clock)
        reporter.update(4)
        reporter.finish()
        assert "4/4" in stream.getvalue()

    def test_unknown_total(self):
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, clock=clock)
        reporter.update(7)
        reporter.finish()
        assert "7 done" in stream.getvalue()

    def test_broken_stream_does_not_raise(self):
        class Broken(io.StringIO):
            def write(self, *_):
                raise OSError("gone")

        reporter = ProgressReporter(stream=Broken(), min_interval=0.0)
        reporter.update()  # must not raise
        reporter.finish()


class TestEta:
    @pytest.mark.parametrize(
        "seconds, expected",
        [
            (0, "0s"),
            (37.4, "37s"),
            (252, "4m12s"),
            (59.6, "1m00s"),
            (3780, "1h03m"),
            (-5, "0s"),
        ],
    )
    def test_format_eta(self, seconds, expected):
        assert format_eta(seconds) == expected

    def test_eta_appears_when_total_known(self):
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(
            total=100, stream=stream, min_interval=0.0, clock=clock
        )
        clock.t = 10.0
        reporter.update(20)  # 2/s, 80 left -> 40s remaining
        assert "eta 40s" in stream.getvalue()

    def test_no_eta_without_total(self):
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, min_interval=0.0, clock=clock)
        clock.t = 10.0
        reporter.update(20)
        assert "eta" not in stream.getvalue()

    def test_no_eta_on_final_emission(self):
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(
            total=4, stream=stream, min_interval=10.0, clock=clock
        )
        clock.t = 1.0
        reporter._count = 4
        reporter.finish()
        assert "eta" not in stream.getvalue()


class TestNullProgress:
    def test_counts_but_never_writes(self, capsys):
        reporter = NullProgress(total=3)
        reporter.update(3)
        reporter.finish()
        assert reporter.count == 3
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""
