"""Score normalization across device pairs.

When gallery and probe come from different devices the raw score scale
shifts (the study's core observation).  Score normalization re-anchors
each (gallery device, probe device) cell so one global threshold works
across cells — the standard operational mitigation, and the mechanism
behind Poh et al.'s "likelihood ratio-based quality dependent score
normalization" cited in the paper's related work.

Implemented normalizers:

* :class:`ZNormalizer` — classic z-norm: standardize by the cell's
  impostor mean/std;
* :class:`LLRNormalizer` — model genuine and impostor score densities
  per cell as Gaussians and output the log-likelihood ratio, optionally
  conditioned on a quality band (good = both images NFIQ 1-2, bad =
  otherwise), which is the quality-dependent variant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..runtime.errors import CalibrationError

#: A device-pair key.
PairKey = Tuple[str, str]

#: Quality band labels for the quality-dependent variant.
GOOD_QUALITY = "good"
POOR_QUALITY = "poor"


def quality_band(nfiq_gallery: int, nfiq_probe: int, max_good: int = 2) -> str:
    """Band a comparison by its worst-side NFIQ level."""
    return GOOD_QUALITY if max(nfiq_gallery, nfiq_probe) <= max_good else POOR_QUALITY


@dataclass(frozen=True)
class _CellStats:
    mean: float
    std: float


class ZNormalizer:
    """Per-device-pair impostor z-normalization.

    ``normalized = (score - mean_impostor) / std_impostor`` — scores
    become "standard deviations above the impostor population", a scale
    that is comparable across device pairs by construction.
    """

    def __init__(self) -> None:
        self._stats: Dict[PairKey, _CellStats] = {}

    def fit_cell(
        self, gallery_device: str, probe_device: str, impostor_scores: np.ndarray
    ) -> None:
        """Record impostor statistics for one device pair."""
        scores = np.asarray(impostor_scores, dtype=np.float64)
        if scores.size < 2:
            raise CalibrationError(
                f"z-norm needs >= 2 impostor scores for "
                f"({gallery_device}, {probe_device})"
            )
        std = float(scores.std(ddof=1))
        self._stats[(gallery_device, probe_device)] = _CellStats(
            mean=float(scores.mean()), std=max(std, 1e-6)
        )

    def normalize(
        self, gallery_device: str, probe_device: str, score: float
    ) -> float:
        """Apply the cell's z-transform to one score."""
        key = (gallery_device, probe_device)
        if key not in self._stats:
            raise CalibrationError(f"z-norm has no statistics for cell {key}")
        stats = self._stats[key]
        return (score - stats.mean) / stats.std

    def normalize_array(
        self, gallery_device: str, probe_device: str, scores: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`normalize`."""
        key = (gallery_device, probe_device)
        if key not in self._stats:
            raise CalibrationError(f"z-norm has no statistics for cell {key}")
        stats = self._stats[key]
        return (np.asarray(scores, dtype=np.float64) - stats.mean) / stats.std


@dataclass(frozen=True)
class _Gaussian:
    mean: float
    std: float

    def log_pdf(self, x: float) -> float:
        z = (x - self.mean) / self.std
        return -0.5 * z * z - math.log(self.std) - 0.5 * math.log(2.0 * math.pi)


class LLRNormalizer:
    """Gaussian log-likelihood-ratio score normalization, per cell.

    The optional quality conditioning fits separate genuine/impostor
    models per (cell, quality band); at test time the comparison's band
    selects the model — Poh et al.'s quality-dependent normalization in
    its simplest faithful form.
    """

    def __init__(self, quality_dependent: bool = False) -> None:
        self.quality_dependent = quality_dependent
        self._models: Dict[Tuple[PairKey, str], Tuple[_Gaussian, _Gaussian]] = {}

    def _band(self, nfiq_gallery: Optional[int], nfiq_probe: Optional[int]) -> str:
        if not self.quality_dependent:
            return GOOD_QUALITY  # single shared band
        if nfiq_gallery is None or nfiq_probe is None:
            raise CalibrationError(
                "quality-dependent LLR requires NFIQ levels for both sides"
            )
        return quality_band(nfiq_gallery, nfiq_probe)

    def fit_cell(
        self,
        gallery_device: str,
        probe_device: str,
        genuine_scores: np.ndarray,
        impostor_scores: np.ndarray,
        nfiq_genuine: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        nfiq_impostor: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> None:
        """Fit the cell's genuine/impostor Gaussians (per band if enabled)."""
        key = (gallery_device, probe_device)
        if self.quality_dependent:
            if nfiq_genuine is None or nfiq_impostor is None:
                raise CalibrationError(
                    "quality-dependent fit requires NFIQ arrays for both sets"
                )
            bands_g = np.array(
                [quality_band(int(a), int(b)) for a, b in zip(*nfiq_genuine)]
            )
            bands_i = np.array(
                [quality_band(int(a), int(b)) for a, b in zip(*nfiq_impostor)]
            )
            for band in (GOOD_QUALITY, POOR_QUALITY):
                gen = np.asarray(genuine_scores)[bands_g == band]
                imp = np.asarray(impostor_scores)[bands_i == band]
                if gen.size >= 2 and imp.size >= 2:
                    self._models[(key, band)] = (
                        _fit_gaussian(gen), _fit_gaussian(imp)
                    )
            # Always provide a pooled fallback for bands without data.
            self._models[(key, "__pooled__")] = (
                _fit_gaussian(np.asarray(genuine_scores)),
                _fit_gaussian(np.asarray(impostor_scores)),
            )
        else:
            self._models[(key, GOOD_QUALITY)] = (
                _fit_gaussian(np.asarray(genuine_scores)),
                _fit_gaussian(np.asarray(impostor_scores)),
            )

    def normalize(
        self,
        gallery_device: str,
        probe_device: str,
        score: float,
        nfiq_gallery: Optional[int] = None,
        nfiq_probe: Optional[int] = None,
    ) -> float:
        """Log-likelihood ratio log p(s|genuine) - log p(s|impostor)."""
        key = (gallery_device, probe_device)
        band = self._band(nfiq_gallery, nfiq_probe)
        model = self._models.get((key, band)) or self._models.get(
            (key, "__pooled__")
        )
        if model is None:
            raise CalibrationError(f"LLR model missing for cell {key}")
        genuine, impostor = model
        return genuine.log_pdf(score) - impostor.log_pdf(score)


def _fit_gaussian(scores: np.ndarray) -> _Gaussian:
    if scores.size < 2:
        raise CalibrationError("Gaussian fit needs >= 2 scores")
    return _Gaussian(
        mean=float(scores.mean()), std=max(float(scores.std(ddof=1)), 1e-3)
    )


__all__ = [
    "ZNormalizer",
    "LLRNormalizer",
    "quality_band",
    "GOOD_QUALITY",
    "POOR_QUALITY",
]
