"""Structured request audit log: one JSON line per finished request.

The ``/stats`` endpoint answers "how is the service doing overall"; the
request log answers "what happened to *that* request".  Every finished
HTTP request appends one JSON object — request id, endpoint, device,
status, the authenticated ``principal`` (``null`` on unauthenticated
requests and open servers), the latency breakdown from its
:class:`~repro.runtime.telemetry.TraceContext` (queue wait, batch wait,
match time, which micro-batches carried its comparisons), and the
gallery size at the time — so a slow or failed ``/verify`` is
attributable after the fact: join the reqlog line's ``batch_ids``
against the batch counters in ``/metrics`` and the time is accounted
for, phase by phase.

Rotation is size-based and dependency-free: when an append would push
the file past ``max_bytes``, the current file shifts to ``<path>.1``
(older generations to ``.2`` … ``.<backups>``, the oldest dropped) and
a fresh file starts.  Writes are serialized by a lock and each line is
flushed, so a crash loses at most the line being written.

Configuration (CLI flags win over the environment):

=============================  ==========================================
``REPRO_SERVE_REQLOG``         path of the JSONL file (unset = disabled)
``REPRO_SERVE_REQLOG_BYTES``   rotate past this size (default 16 MiB)
``REPRO_SERVE_SLOW_MS``        slow-request threshold; over it, the full
                               span timeline is also logged at WARNING
=============================  ==========================================
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Iterator, Optional

from ..runtime.config import env_float, env_int
from ..runtime.telemetry import get_logger

#: Default rotation threshold: 16 MiB per generation.
DEFAULT_MAX_BYTES = 16 * 1024 * 1024

#: Rotated generations kept (``<path>.1`` … ``<path>.N``).
DEFAULT_BACKUPS = 3

_log = get_logger("service.reqlog")


class RequestLog:
    """Append-only JSONL audit log with size-based rotation.

    Thread-safe: the serving loop writes request lines while the CLI's
    shutdown path closes the handle.
    """

    def __init__(
        self,
        path,
        max_bytes: int = DEFAULT_MAX_BYTES,
        backups: int = DEFAULT_BACKUPS,
    ) -> None:
        self._path = Path(path)
        self._max_bytes = max(1024, int(max_bytes))
        self._backups = max(1, int(backups))
        self._lock = threading.Lock()
        self._handle = None
        self.lines_written = 0
        self.rotations = 0

    @property
    def path(self) -> Path:
        return self._path

    @classmethod
    def from_environment(cls) -> Optional["RequestLog"]:
        """A log configured by ``REPRO_SERVE_REQLOG*``, or ``None``."""
        target = os.environ.get("REPRO_SERVE_REQLOG")
        if not target:
            return None
        max_bytes = env_int("REPRO_SERVE_REQLOG_BYTES")
        return cls(
            target,
            max_bytes=max_bytes if max_bytes is not None else DEFAULT_MAX_BYTES,
        )

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _open(self):
        if self._handle is None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self._path.open("a", encoding="utf-8")
        return self._handle

    def _rotate(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        oldest = self._path.with_name(f"{self._path.name}.{self._backups}")
        oldest.unlink(missing_ok=True)
        for generation in range(self._backups - 1, 0, -1):
            source = self._path.with_name(f"{self._path.name}.{generation}")
            if source.exists():
                source.rename(
                    self._path.with_name(f"{self._path.name}.{generation + 1}")
                )
        if self._path.exists():
            self._path.rename(self._path.with_name(f"{self._path.name}.1"))
        self.rotations += 1

    def write(self, record: dict) -> None:
        """Append one request record (never raises into the server)."""
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            try:
                handle = self._open()
                if handle.tell() + len(line) + 1 > self._max_bytes:
                    self._rotate()
                    handle = self._open()
                handle.write(line + "\n")
                handle.flush()
                self.lines_written += 1
            except OSError as exc:  # disk full, permission lost, ...
                _log.warning(
                    "request log write failed",
                    extra={"data": {"path": str(self._path),
                                    "error": repr(exc)}},
                )

    def close(self) -> None:
        """Flush and close the current generation (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "RequestLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def iter_reqlog(path) -> Iterator[dict]:
    """Yield the records of one reqlog generation (tests, CI, tooling)."""
    target = Path(path)
    if not target.exists():
        return
    with target.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def slow_threshold_ms() -> Optional[float]:
    """The ``REPRO_SERVE_SLOW_MS`` threshold, or ``None`` when unset."""
    value = env_float("REPRO_SERVE_SLOW_MS")
    if value is None or value < 0:
        return None
    return value


__all__ = [
    "RequestLog",
    "iter_reqlog",
    "slow_threshold_ms",
    "DEFAULT_MAX_BYTES",
    "DEFAULT_BACKUPS",
]
