"""A second, structurally different matcher (diverse-matcher substrate).

The paper's further-work list opens with "more detailed analysis on the
effects of diverse matchers on interoperability".  Diversity only helps
if the second engine fails differently from the first, so this matcher
shares *no* pipeline stages with :class:`BioEngineMatcher`.  It follows
the Bozorth3 idea instead: compare rotation/translation-invariant
*pairwise* structures directly, with no global alignment step.

For every intra-template minutia pair closer than a horizon:

* ``d``      — pair distance;
* ``beta1``  — direction of minutia 1 relative to the joining segment;
* ``beta2``  — direction of minutia 2 relative to the joining segment.

These triples are invariant to rigid motion.  Two templates are compared
by tolerantly matching their triple tables (greedy, each pair used
once); the score is the matched fraction mapped onto the same 0–24
scale so fusion can combine the engines without renormalizing.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .descriptors import wrap_angle
from .scoring import MIN_TEMPLATE_MINUTIAE, SCORE_SCALE
from .types import Template

#: Only pairs closer than this form table entries (Bozorth uses a similar cap).
PAIR_HORIZON_MM = 11.0

#: Matching tolerances for table entries.
DIST_TOL_MM = 0.55
BETA_TOL_RAD = np.deg2rad(16.0)


def _pair_table(template: Template) -> np.ndarray:
    """Build the (m, 3) invariant pair table of a template."""
    n = len(template)
    if n < 2:
        return np.zeros((0, 3))
    pos = template.positions_mm()
    ang = template.angles()
    diff = pos[None, :, :] - pos[:, None, :]
    dist = np.sqrt(np.sum(diff**2, axis=2))
    ii, jj = np.where(np.triu(dist <= PAIR_HORIZON_MM, k=1))
    if ii.size == 0:
        return np.zeros((0, 3))
    segment = np.arctan2(diff[ii, jj, 1], diff[ii, jj, 0])
    beta1 = wrap_angle(ang[ii] - segment)
    beta2 = wrap_angle(ang[jj] - segment)
    return np.column_stack([dist[ii, jj], beta1, beta2])


class RidgeGeometryMatcher:
    """Alignment-free pairwise-structure matcher.

    Weaker than the BioEngine substitute (as Bozorth3 is weaker than
    commercial engines) but with *independent* failure modes: it has no
    alignment stage to mislead, so it degrades differently under
    cross-device distortion — which is the property matcher-diversity
    experiments need.
    """

    #: Name used by :class:`~repro.runtime.config.StudyConfig`.
    name = "ridgecount"

    def __init__(self, max_cache_entries: int = 4096) -> None:
        self._table_cache: Dict[int, np.ndarray] = {}
        self._max_cache_entries = max_cache_entries

    def _table(self, template: Template) -> np.ndarray:
        key = id(template)
        cached = self._table_cache.get(key)
        if cached is not None:
            return cached
        table = _pair_table(template)
        if len(self._table_cache) >= self._max_cache_entries:
            self._table_cache.clear()
        self._table_cache[key] = table
        return table

    def match(self, probe: Template, gallery: Template) -> float:
        """Similarity score on the common 0–24 scale."""
        if len(probe) < MIN_TEMPLATE_MINUTIAE or len(gallery) < MIN_TEMPLATE_MINUTIAE:
            return 0.0
        table_p = self._table(probe)
        table_g = self._table(gallery)
        if table_p.shape[0] == 0 or table_g.shape[0] == 0:
            return 0.0

        d_ok = np.abs(table_p[:, 0:1] - table_g[None, :, 0].reshape(1, -1)) <= DIST_TOL_MM
        # Beta angles can swap ends depending on enumeration order; accept
        # either assignment.
        b1 = np.abs(wrap_angle(table_p[:, 1:2] - table_g[None, :, 1].reshape(1, -1)))
        b2 = np.abs(wrap_angle(table_p[:, 2:3] - table_g[None, :, 2].reshape(1, -1)))
        b1s = np.abs(wrap_angle(table_p[:, 1:2] - table_g[None, :, 2].reshape(1, -1)))
        b2s = np.abs(wrap_angle(table_p[:, 2:3] - table_g[None, :, 1].reshape(1, -1)))
        direct = (b1 <= BETA_TOL_RAD) & (b2 <= BETA_TOL_RAD)
        swapped = (b1s <= BETA_TOL_RAD) & (b2s <= BETA_TOL_RAD)
        compatible = d_ok & (direct | swapped)

        # Greedy one-to-one on the compatibility matrix via row/column caps.
        row_hits = compatible.any(axis=1).sum()
        col_hits = compatible.any(axis=0).sum()
        matched = float(min(row_hits, col_hits))

        denom = float(min(table_p.shape[0], table_g.shape[0]))
        ratio = matched / denom if denom > 0 else 0.0
        # Chance-level table agreement between impostors is substantial for
        # this alignment-free design; subtract the empirical chance floor
        # and rescale so the score lands on the shared 0-24 scale.
        adjusted = max(0.0, ratio - 0.18) / (1.0 - 0.18)
        return float(SCORE_SCALE * adjusted**1.5)


__all__ = ["RidgeGeometryMatcher", "PAIR_HORIZON_MM"]
