"""GMM device inference p(d|q)."""

import numpy as np
import pytest

from repro.calibration.device_inference import DeviceInferenceModel, GaussianMixture
from repro.quality.features import QualityFeatures
from repro.runtime.errors import CalibrationError


class TestGaussianMixture:
    def test_fits_separated_clusters(self):
        rng = np.random.default_rng(0)
        data = np.vstack(
            [rng.normal(0, 0.3, (100, 2)), rng.normal(5, 0.3, (100, 2))]
        )
        gmm = GaussianMixture(n_components=2).fit(data, rng)
        means = np.sort(gmm.means[:, 0])
        assert means[0] == pytest.approx(0.0, abs=0.4)
        assert means[1] == pytest.approx(5.0, abs=0.4)

    def test_likelihood_higher_on_own_data(self):
        rng = np.random.default_rng(1)
        data = rng.normal(0, 1, (200, 3))
        gmm = GaussianMixture(n_components=2).fit(data, rng)
        inside = gmm.log_likelihood(np.zeros((1, 3)))[0]
        outside = gmm.log_likelihood(np.full((1, 3), 30.0))[0]
        assert inside > outside

    def test_weights_normalized(self):
        rng = np.random.default_rng(2)
        gmm = GaussianMixture(n_components=3).fit(rng.normal(size=(90, 2)), rng)
        assert gmm.weights.sum() == pytest.approx(1.0)

    def test_too_few_samples(self):
        rng = np.random.default_rng(3)
        with pytest.raises(CalibrationError):
            GaussianMixture(n_components=5).fit(np.zeros((3, 2)), rng)

    def test_unfitted_likelihood_raises(self):
        with pytest.raises(CalibrationError):
            GaussianMixture().log_likelihood(np.zeros((1, 2)))


def _collect_features(collection, device, n=10, finger="right_index", sets=(0,)):
    return [
        collection.get(sid, finger, device, set_index).features
        for sid in range(n)
        for set_index in sets
    ]


class TestDeviceInference:
    def test_posterior_sums_to_one(self, tiny_collection, rng):
        model = DeviceInferenceModel(n_components=1).fit(
            {
                "D0": _collect_features(tiny_collection, "D0"),
                "D4": _collect_features(tiny_collection, "D4"),
            },
            rng,
        )
        posterior = model.posterior(
            tiny_collection.get(0, "right_index", "D0", 1).features
        )
        assert sum(posterior.values()) == pytest.approx(1.0)
        assert set(posterior) == {"D0", "D4"}

    def test_separable_devices_identified(self, tiny_collection, rng):
        # D0 (clean optical) vs D4 (ink): very different quality
        # signatures.  Train on the index finger (both sets), test on the
        # disjoint middle-finger impressions.
        model = DeviceInferenceModel(n_components=1).fit(
            {
                "D0": _collect_features(tiny_collection, "D0", sets=(0, 1)),
                "D4": _collect_features(tiny_collection, "D4", sets=(0, 1)),
            },
            rng,
        )
        labeled = [
            ("D0", f)
            for f in _collect_features(
                tiny_collection, "D0", finger="right_middle", sets=(0, 1)
            )
        ] + [
            ("D4", f)
            for f in _collect_features(
                tiny_collection, "D4", finger="right_middle", sets=(0, 1)
            )
        ]
        # Twenty training samples per device: comfortably above chance.
        assert model.accuracy(labeled) >= 0.65

    def test_needs_two_devices(self, tiny_collection, rng):
        with pytest.raises(CalibrationError):
            DeviceInferenceModel().fit(
                {"D0": _collect_features(tiny_collection, "D0")}, rng
            )

    def test_unfitted_raises(self, tiny_collection):
        model = DeviceInferenceModel()
        with pytest.raises(CalibrationError):
            model.posterior(tiny_collection.get(0, "right_index", "D0", 0).features)

    def test_accuracy_empty_rejected(self, tiny_collection, rng):
        model = DeviceInferenceModel(n_components=1).fit(
            {
                "D0": _collect_features(tiny_collection, "D0"),
                "D4": _collect_features(tiny_collection, "D4"),
            },
            rng,
        )
        with pytest.raises(CalibrationError):
            model.accuracy([])
