"""Dataset assembly: the synthetic WVU 2012 collection."""

from .summary import (
    DeviceSummary,
    render_collection_summary,
    summarize_collection,
)
from .wvu2012 import build_collection, default_device_order, subject_session

__all__ = [
    "build_collection",
    "subject_session",
    "default_device_order",
    "DeviceSummary",
    "summarize_collection",
    "render_collection_summary",
]
