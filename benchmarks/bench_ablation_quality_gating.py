"""Ablation 4 — NFIQ reacquisition policy.

The paper's collection was quality-uncontrolled; NIST recommends
re-capturing while NFIQ > 3 (up to three times).  This ablation runs the
same population under both policies and quantifies the effect on the
NFIQ distribution and the cross-device low-score tail.
"""

import numpy as np

from _bench_common import bench_config
from repro.api import InteroperabilityStudy, ProtocolSettings

ABLATION_SUBJECTS = 24


def test_ablation_quality_gating(benchmark, record_artifact):
    config = bench_config(n_subjects=ABLATION_SUBJECTS)
    plain = InteroperabilityStudy(config)
    gated = InteroperabilityStudy(
        config, protocol=ProtocolSettings(quality_gating=True)
    )
    plain.score_sets()

    def run_gated():
        return gated.score_sets()

    benchmark.pedantic(run_gated, rounds=1, iterations=1)

    def poor_fraction(study):
        levels = np.array([imp.nfiq for imp in study.collection()])
        return float(np.mean(levels >= 4))

    plain_poor = poor_fraction(plain)
    gated_poor = poor_fraction(gated)
    plain_low = float(np.mean(plain.score_sets()["DDMG"].scores < 10.0))
    gated_low = float(np.mean(gated.score_sets()["DDMG"].scores < 10.0))

    text = "\n".join(
        [
            f"Ablation: NIST SP 800-76 quality gating ({ABLATION_SUBJECTS} subjects)",
            f"  fraction of NFIQ >= 4 impressions: "
            f"no gating {plain_poor:.3f}   gating {gated_poor:.3f}",
            f"  P(DDMG score < 10):               "
            f"no gating {plain_low:.3f}   gating {gated_low:.3f}",
        ]
    )
    record_artifact(text)
    print("\n" + text)

    assert gated_poor <= plain_poor
    assert gated_low <= plain_low + 0.02
