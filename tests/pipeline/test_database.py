"""Enrollment database."""

import pytest

from repro.pipeline.database import EnrolledRecord, EnrollmentError, TemplateDatabase


@pytest.fixture()
def record(genuine_template_pair):
    return EnrolledRecord(
        identity="subject-0",
        template=genuine_template_pair[0],
        device_id="D0",
        nfiq=2,
    )


class TestRecord:
    def test_valid(self, record):
        assert record.identity == "subject-0"

    def test_empty_identity(self, genuine_template_pair):
        with pytest.raises(EnrollmentError):
            EnrolledRecord(identity="", template=genuine_template_pair[0])

    def test_bad_nfiq(self, genuine_template_pair):
        with pytest.raises(EnrollmentError):
            EnrolledRecord(
                identity="x", template=genuine_template_pair[0], nfiq=9
            )

    def test_unknown_provenance_allowed(self, genuine_template_pair):
        record = EnrolledRecord(identity="x", template=genuine_template_pair[0])
        assert record.device_id == "" and record.nfiq == 0


class TestDatabase:
    def test_enroll_and_get(self, record):
        db = TemplateDatabase()
        db.enroll(record)
        assert db.get("subject-0") is record
        assert db.has("subject-0")
        assert len(db) == 1

    def test_duplicate_rejected(self, record):
        db = TemplateDatabase()
        db.enroll(record)
        with pytest.raises(EnrollmentError, match="already enrolled"):
            db.enroll(record)

    def test_replace(self, record, genuine_template_pair):
        db = TemplateDatabase()
        db.enroll(record)
        updated = EnrolledRecord(
            identity="subject-0", template=genuine_template_pair[1], device_id="D1"
        )
        db.enroll(updated, replace=True)
        assert db.get("subject-0").device_id == "D1"

    def test_missing_identity(self):
        with pytest.raises(EnrollmentError, match="not enrolled"):
            TemplateDatabase().get("ghost")

    def test_remove(self, record):
        db = TemplateDatabase()
        db.enroll(record)
        db.remove("subject-0")
        assert not db.has("subject-0")
        with pytest.raises(EnrollmentError):
            db.remove("subject-0")

    def test_iteration_sorted(self, genuine_template_pair):
        db = TemplateDatabase()
        for name in ("carol", "alice", "bob"):
            db.enroll(EnrolledRecord(identity=name, template=genuine_template_pair[0]))
        assert [r.identity for r in db] == ["alice", "bob", "carol"]


class TestPersistence:
    def test_save_load_roundtrip(self, tiny_collection, tmp_path):
        db = TemplateDatabase()
        for sid in range(4):
            imp = tiny_collection.get(sid, "right_index", "D0", 0)
            db.enroll(
                EnrolledRecord(
                    identity=f"subject-{sid}",
                    template=imp.template,
                    device_id=imp.device_id,
                    nfiq=imp.nfiq,
                )
            )
        assert db.save(tmp_path / "gallery") == 4

        restored = TemplateDatabase.load(tmp_path / "gallery")
        assert len(restored) == 4
        original = db.get("subject-2")
        loaded = restored.get("subject-2")
        assert loaded.device_id == original.device_id
        assert loaded.nfiq == original.nfiq
        assert len(loaded.template) == len(original.template)

    def test_load_missing_dir(self, tmp_path):
        with pytest.raises(EnrollmentError):
            TemplateDatabase.load(tmp_path / "absent")

    def test_loaded_templates_still_match(self, tiny_collection, matcher, tmp_path):
        imp = tiny_collection.get(0, "right_index", "D0", 0)
        probe = tiny_collection.get(0, "right_index", "D0", 1).template
        db = TemplateDatabase()
        db.enroll(EnrolledRecord(identity="s0", template=imp.template, device_id="D0"))
        db.save(tmp_path / "g")
        restored = TemplateDatabase.load(tmp_path / "g")
        score = matcher.match(probe, restored.get("s0").template)
        # INCITS quantization costs at most a fraction of a point.
        assert score > 8
