"""Report renderers produce complete, well-formed text artifacts."""

import numpy as np
import pytest

from repro.core.report import (
    render_figure1,
    render_figure4,
    render_figure5,
    render_fnmr_matrix,
    render_score_histograms,
    render_table1,
    render_table3,
    render_table4,
)
from repro.core.kendall_analysis import kendall_matrix
from repro.core.quality_analysis import low_score_quality_surface


class TestTable1:
    def test_contains_all_models(self):
        text = render_table1()
        for model in ("Guardian R2", "digID Mini", "TouchPrint", "Seek II"):
            assert model in text

    def test_contains_published_numbers(self):
        text = render_table1()
        assert "500" in text
        assert "800 x 750" in text
        assert "40.6 x 38.1" in text


class TestTable3:
    def test_all_scenarios_listed(self, tiny_study, tiny_config):
        text = render_table3(tiny_study.score_sets(), tiny_config.n_subjects)
        for scenario in ("DMG", "DMI", "DDMG", "DDMI"):
            assert scenario in text


class TestTable4:
    def test_matrix_rendered(self, tiny_study):
        text = render_table4(kendall_matrix(tiny_study))
        assert "DX-D4" in text
        assert text.count("e") > 10  # scientific notation cells


class TestFnmrMatrix:
    def test_renders_all_devices(self):
        matrix = np.full((5, 5), 0.001)
        text = render_fnmr_matrix(matrix, "Table 5")
        for device in ("D0", "D1", "D2", "D3", "D4"):
            assert device in text
        assert "1.00e-03" in text

    def test_nan_rendered_as_dash(self):
        matrix = np.full((5, 5), np.nan)
        text = render_fnmr_matrix(matrix, "t")
        assert "--" in text


class TestFigures:
    def test_figure1(self, tiny_study):
        text = render_figure1(tiny_study.demographics())
        assert "20-29" in text and "Caucasian" in text

    def test_figure2_style_histograms(self, tiny_study):
        sets = tiny_study.score_sets()
        text = render_score_histograms(
            sets["DMG"].for_pair("D0", "D0"),
            sets["DMI"].for_pair("D0", "D0"),
            "Figure 2",
        )
        assert "DMG" in text and "DMI" in text

    def test_figure4(self, tiny_study):
        per_probe = {
            device: tiny_study.genuine_scores("D3", device).scores
            for device in ("D0", "D1", "D2", "D3", "D4")
        }
        text = render_figure4(per_probe, gallery_device="D3")
        assert "same device" in text
        assert "probe D4" in text

    def test_figure5(self, tiny_study):
        text = render_figure5(
            low_score_quality_surface(tiny_study, False),
            low_score_quality_surface(tiny_study, True),
        )
        assert "Figure 5(a)" in text and "Figure 5(b)" in text
