"""Descriptor prefilter: vector invariances, index vs brute force, parity.

The load-bearing property for the two-stage ``/identify`` path is at
the bottom: against a seeded 500+-key multi-device gallery, two-stage
top-1 must agree with the exhaustive oracle — the prefilter may only
change *how much* the exact matcher scores, never *what wins*.
"""

import numpy as np
import pytest

from repro.core.identification import TwoStageIdentifier, rank_candidates
from repro.core.prefilter import (
    DESCRIPTOR_DIM,
    PrefilterCandidate,
    PrefilterIndex,
    descriptor_vector,
    merge_shard_candidates,
)
from repro.matcher.types import template_from_arrays
from repro.runtime.errors import ConfigurationError

FINGER = "right_index"


def _random_template(rng, n_min=25, n_max=60):
    """A synthetic template with plausible minutia statistics."""
    n = int(rng.integers(n_min, n_max + 1))
    return template_from_arrays(
        positions_px=rng.uniform((30.0, 30.0), (270.0, 370.0), size=(n, 2)),
        angles=rng.uniform(0.0, 2.0 * np.pi, size=n),
        kinds=rng.choice((1, 2), size=n, p=(0.6, 0.4)),
        qualities=rng.integers(40, 100, size=n),
        width_px=300,
        height_px=400,
    )


def _device_view(template, rng, drop=0.15, jitter_px=1.5, spurious=3):
    """Re-capture the same finger on a 'different device': new pose,
    placement jitter, missed and spurious minutiae."""
    positions = template.positions_px()
    angles = template.angles()
    kinds = template.kinds()
    qualities = template.qualities()

    theta = float(rng.uniform(-0.4, 0.4))
    rotation = np.array(
        [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
    )
    center = positions.mean(axis=0)
    positions = (positions - center) @ rotation.T + center
    positions = positions + rng.uniform(-25.0, 25.0, size=2)
    positions = positions + rng.normal(0.0, jitter_px, size=positions.shape)
    angles = angles + theta

    keep = rng.random(len(positions)) > drop
    if keep.sum() < 8:
        keep[:] = True
    positions, angles = positions[keep], angles[keep]
    kinds, qualities = kinds[keep], qualities[keep]

    n_extra = int(rng.integers(0, spurious + 1))
    if n_extra:
        positions = np.vstack(
            [positions, rng.uniform((30.0, 30.0), (270.0, 370.0), (n_extra, 2))]
        )
        angles = np.concatenate([angles, rng.uniform(0.0, 2 * np.pi, n_extra)])
        kinds = np.concatenate([kinds, rng.choice((1, 2), n_extra)])
        qualities = np.concatenate([qualities, rng.integers(40, 100, n_extra)])

    return template_from_arrays(
        positions_px=positions,
        angles=angles,
        kinds=kinds,
        qualities=qualities,
        width_px=300,
        height_px=400,
    )


class TestDescriptorVector:
    def test_shape_dtype_and_finiteness(self, rng):
        vector = descriptor_vector(_random_template(rng))
        assert vector.shape == (DESCRIPTOR_DIM,)
        assert vector.dtype == np.float64
        assert np.isfinite(vector).all()

    def test_deterministic(self, rng):
        template = _random_template(rng)
        np.testing.assert_array_equal(
            descriptor_vector(template), descriptor_vector(template)
        )

    def test_sparse_template_still_finite(self):
        tiny = template_from_arrays(
            positions_px=[[10.0, 10.0], [40.0, 12.0], [11.0, 46.0], [75.0, 75.0]],
            angles=[0.1, 1.0, 2.0, 3.0],
            kinds=[1, 2, 1, 2],
            qualities=[10, 12, 9, 11],
            width_px=300,
            height_px=400,
        )
        vector = descriptor_vector(tiny)
        assert vector.shape == (DESCRIPTOR_DIM,)
        assert np.isfinite(vector).all()

    def test_structure_histogram_is_pose_invariant(self, rng):
        # The decisive property for cross-device recall: rotating and
        # translating the capture must not move the bag-of-structures
        # half of the descriptor (local distances and relative angles
        # are pose-free by construction).
        template = _random_template(rng)
        positions = template.positions_px()
        theta = 0.7
        rotation = np.array(
            [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
        )
        moved = template_from_arrays(
            positions_px=(positions - positions.mean(0)) @ rotation.T
            + positions.mean(0)
            + np.array([17.0, -23.0]),
            angles=template.angles() + theta,
            kinds=template.kinds(),
            qualities=template.qualities(),
            width_px=300,
            height_px=400,
        )
        bag = descriptor_vector(template)[:512]
        bag_moved = descriptor_vector(moved)[:512]
        np.testing.assert_allclose(bag_moved, bag, atol=1e-6)

    def test_different_fingers_are_far_apart(self, rng):
        a = descriptor_vector(_random_template(rng))
        b = descriptor_vector(_random_template(rng))
        same = np.linalg.norm(a - a)
        other = np.linalg.norm(a - b)
        assert other > 0.0 and same == 0.0


class TestPrefilterIndex:
    def _vectors(self, rng, n):
        return {f"id-{i:03d}": rng.normal(size=DESCRIPTOR_DIM) for i in range(n)}

    def test_top_k_matches_brute_force(self, rng):
        vectors = self._vectors(rng, 50)
        index = PrefilterIndex.from_items(vectors)
        probe = rng.normal(size=DESCRIPTOR_DIM)
        got = index.top_k(probe, 7)
        expected = sorted(
            (float(np.sum((v - probe) ** 2)), key) for key, v in vectors.items()
        )[:7]
        assert [c.key for c in got] == [key for _, key in expected]
        assert [c.rank for c in got] == list(range(1, 8))
        for candidate, (distance_sq, _) in zip(got, expected):
            assert candidate.distance == pytest.approx(np.sqrt(distance_sq))

    def test_k_larger_than_index_returns_everything(self, rng):
        vectors = self._vectors(rng, 5)
        index = PrefilterIndex.from_items(vectors)
        got = index.top_k(rng.normal(size=DESCRIPTOR_DIM), 100)
        assert sorted(c.key for c in got) == sorted(vectors)

    def test_add_replaces_existing_key(self, rng):
        index = PrefilterIndex(dim=DESCRIPTOR_DIM)
        index.add("dup", np.zeros(DESCRIPTOR_DIM))
        replacement = np.ones(DESCRIPTOR_DIM)
        index.add("dup", replacement)
        assert len(index) == 1
        np.testing.assert_array_equal(index.matrix()[0], replacement)

    def test_remove_keeps_search_correct(self, rng):
        vectors = self._vectors(rng, 20)
        index = PrefilterIndex.from_items(vectors)
        victim = "id-007"
        index.remove(victim)
        del vectors[victim]
        probe = rng.normal(size=DESCRIPTOR_DIM)
        got = [c.key for c in index.top_k(probe, 5)]
        expected = [
            key
            for _, key in sorted(
                (float(np.sum((v - probe) ** 2)), key)
                for key, v in vectors.items()
            )[:5]
        ]
        assert got == expected

    def test_matrix_rows_follow_sorted_keys(self, rng):
        vectors = self._vectors(rng, 10)
        index = PrefilterIndex.from_items(vectors)
        for key, row in zip(index.keys(), index.matrix()):
            np.testing.assert_array_equal(row, vectors[key])

    def test_dimension_mismatch_rejected(self):
        index = PrefilterIndex(dim=DESCRIPTOR_DIM)
        with pytest.raises(ConfigurationError):
            index.add("short", np.zeros(3))

    def test_ties_break_by_key(self):
        index = PrefilterIndex(dim=DESCRIPTOR_DIM)
        same = np.ones(DESCRIPTOR_DIM)
        for key in ("zebra", "apple", "mango"):
            index.add(key, same)
        got = [c.key for c in index.top_k(np.zeros(DESCRIPTOR_DIM), 3)]
        assert got == ["apple", "mango", "zebra"]


class TestMergeShardCandidates:
    def test_global_top_k_across_shards(self, rng):
        shards = {}
        flat = {}
        for device in ("D0", "D1", "D2"):
            vectors = {
                f"s-{i}": rng.normal(size=DESCRIPTOR_DIM) for i in range(15)
            }
            shards[device] = PrefilterIndex.from_items(vectors)
            flat.update({f"{device}/{k}": v for k, v in vectors.items()})
        probe = rng.normal(size=DESCRIPTOR_DIM)

        per_shard = [
            [
                PrefilterCandidate(f"{device}/{c.key}", c.distance, c.rank)
                for c in index.top_k(probe, 6)
            ]
            for device, index in shards.items()
        ]
        merged = merge_shard_candidates(per_shard, 6)

        expected = [
            key
            for _, key in sorted(
                (float(np.sum((v - probe) ** 2)), key) for key, v in flat.items()
            )[:6]
        ]
        assert [c.key for c in merged] == expected
        assert [c.rank for c in merged] == list(range(1, 7))

    def test_empty_shards_are_skipped(self):
        shard = [PrefilterCandidate("a", 1.0, 1)]
        merged = merge_shard_candidates([[], shard, []], 3)
        assert [c.key for c in merged] == ["a"]
        assert merge_shard_candidates([], 5) == []
        assert merge_shard_candidates([[], [], []], 5) == []

    def test_unequal_shard_sizes(self):
        big = [
            PrefilterCandidate(f"b-{i}", float(i), i) for i in range(1, 6)
        ]
        small = [PrefilterCandidate("s-0", 2.5, 1)]
        merged = merge_shard_candidates([big, small], 4)
        assert [c.key for c in merged] == ["b-1", "b-2", "s-0", "b-3"]
        assert [c.rank for c in merged] == [1, 2, 3, 4]

    def test_duplicate_keys_keep_nearest_distance(self):
        # A retried fan-out can answer twice: the same key must survive
        # once, at its best (smallest) distance.
        first = [PrefilterCandidate("dup", 3.0, 1)]
        second = [
            PrefilterCandidate("dup", 1.0, 1),
            PrefilterCandidate("other", 2.0, 2),
        ]
        merged = merge_shard_candidates([first, second], 5)
        assert [(c.key, c.distance) for c in merged] == [
            ("dup", 1.0), ("other", 2.0)
        ]
        assert [c.rank for c in merged] == [1, 2]

    def test_k_larger_than_total_gallery(self):
        shards = [
            [PrefilterCandidate("a", 1.0, 1)],
            [PrefilterCandidate("b", 2.0, 1)],
        ]
        merged = merge_shard_candidates(shards, 100)
        assert [c.key for c in merged] == ["a", "b"]

    def test_nonpositive_k_yields_empty(self):
        shards = [[PrefilterCandidate("a", 1.0, 1)]]
        assert merge_shard_candidates(shards, 0) == []
        assert merge_shard_candidates(shards, -3) == []

    def test_ties_break_on_key_across_shards(self):
        shards = [
            [PrefilterCandidate("zeta", 1.0, 1)],
            [PrefilterCandidate("alpha", 1.0, 1)],
        ]
        merged = merge_shard_candidates(shards, 2)
        assert [c.key for c in merged] == ["alpha", "zeta"]


class TestTwoStageParity:
    """Property: two-stage top-1 == exhaustive top-1, at scale."""

    GALLERY_IDENTITIES = 260  # x2 devices = 520 gallery keys
    PROBES = 8

    @pytest.fixture(scope="class")
    def big_gallery(self):
        rng = np.random.default_rng(20130624)
        fingers = [_random_template(rng) for _ in range(self.GALLERY_IDENTITIES)]
        gallery = {}
        for i, finger in enumerate(fingers):
            for device in ("D0", "D1"):
                gallery[f"{device}/id-{i:03d}"] = _device_view(finger, rng)
        return fingers, gallery, rng

    def test_two_stage_top1_matches_exhaustive(self, big_gallery, matcher):
        fingers, gallery, rng = big_gallery
        identifier = TwoStageIdentifier(matcher, gallery, candidate_k=32)
        assert len(identifier) == 2 * self.GALLERY_IDENTITIES

        probe_ids = rng.choice(self.GALLERY_IDENTITIES, self.PROBES, replace=False)
        for identity in probe_ids:
            probe = _device_view(fingers[identity], rng)
            exhaustive = rank_candidates(matcher, probe, gallery)
            fast, report = identifier.identify(probe, max_candidates=5)

            assert report.mode == "two_stage"
            assert report.gallery_size == len(gallery)
            assert report.candidates_scored == 32

            assert fast[0].identity == exhaustive[0].identity
            assert fast[0].score == exhaustive[0].score  # bit-identical rescore
            # The winner is the probe's own finger on one of the devices.
            assert fast[0].identity.split("/", 1)[1] == f"id-{identity:03d}"

    def test_generous_k_recovers_full_ranking_prefix(self, big_gallery, matcher):
        fingers, gallery, rng = big_gallery
        identifier = TwoStageIdentifier(matcher, gallery, candidate_k=64)
        probe = _device_view(fingers[3], rng)
        exhaustive = rank_candidates(matcher, probe, gallery)
        fast, _ = identifier.identify(probe, max_candidates=3)
        assert [c.identity for c in fast] == [
            c.identity for c in exhaustive[:3]
        ]
