"""Image-quality analyses: Table 6 and Figure 5 machinery.

Section IV.D of the paper studies how NFIQ image quality interacts with
interoperability:

* **Table 6** — the FNMR interoperability matrix recomputed at FMR 0.1 %
  keeping only comparisons where the images have "NFIQ quality < 3"
  (levels 1–2); quality control collapses the error rates and scrambles
  the intra/inter ordering;
* **Figure 5** — the frequency of *low* genuine scores (< 10) for every
  (gallery quality, probe quality) pair, separately for same-device
  (DMG) and cross-device (DDMG) matching.  The cross-device panel needs
  *both* images at quality 1–2 to stay clean, the paper's operational
  recommendation.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..stats.histogram import FrequencySurface
from .error_rates import (
    TABLE6_FMR,
    TABLE6_MAX_NFIQ,
    fnmr_interoperability_matrix,
)

#: Score threshold of Figure 5 ("matching scores lower than 10").
LOW_SCORE_THRESHOLD = 10.0


def quality_filtered_fnmr_matrix(study) -> np.ndarray:
    """Table 6: the FNMR matrix at 0.1 % FMR for NFIQ-1/2 images."""
    return fnmr_interoperability_matrix(
        study, target_fmr=TABLE6_FMR, max_nfiq=TABLE6_MAX_NFIQ
    )


def low_score_quality_surface(
    study, cross_device: bool, score_below: float = LOW_SCORE_THRESHOLD
) -> FrequencySurface:
    """Figure 5 panel: low-genuine-score counts by quality pair.

    Parameters
    ----------
    study:
        The interoperability study.
    cross_device:
        ``False`` → panel (a), same-device (DMG); ``True`` → panel (b),
        cross-device (DDMG).
    score_below:
        The "low score" cutoff.
    """
    source = study.score_sets()["DDMG" if cross_device else "DMG"]
    low = source.select(source.scores < score_below)
    counts = np.zeros((5, 5), dtype=np.int64)
    for g, p in zip(low.nfiq_gallery, low.nfiq_probe):
        counts[int(g) - 1, int(p) - 1] += 1
    return FrequencySurface(
        row_labels=(1, 2, 3, 4, 5), col_labels=(1, 2, 3, 4, 5), counts=counts
    )


def good_quality_low_score_fraction(
    surface: FrequencySurface, max_level: int = 2
) -> float:
    """Fraction of low scores whose images were *both* good quality.

    The paper's reading of Figure 5: for same-device matching, low
    scores are negligible "as long as one of the images has a quality
    score between 1 and 3"; cross-device matching needs both in 1–2.
    This helper quantifies the claim for tests.
    """
    total = surface.total
    if total == 0:
        return 0.0
    good = int(surface.counts[:max_level, :max_level].sum())
    return good / total


def surface_mass_by_worst_quality(surface: FrequencySurface) -> Dict[int, int]:
    """Low-score counts keyed by max(gallery NFIQ, probe NFIQ)."""
    mass: Dict[int, int] = {level: 0 for level in (1, 2, 3, 4, 5)}
    for i in range(5):
        for j in range(5):
            mass[max(i + 1, j + 1)] += int(surface.counts[i, j])
    return mass


__all__ = [
    "quality_filtered_fnmr_matrix",
    "low_score_quality_surface",
    "good_quality_low_score_fraction",
    "surface_mass_by_worst_quality",
    "LOW_SCORE_THRESHOLD",
]
