"""Score-set serialization."""

import numpy as np
import pytest

from repro.io.scorefile import load_score_set, save_score_set
from repro.runtime.errors import ReproError


class TestRoundTrip:
    def test_full_roundtrip(self, tiny_study, tmp_path):
        original = tiny_study.score_sets()["DMG"]
        path = tmp_path / "dmg.npz"
        save_score_set(original, path)
        restored = load_score_set(path)
        assert restored.scenario == original.scenario
        assert restored.matcher_name == original.matcher_name
        np.testing.assert_array_equal(restored.scores, original.scores)
        np.testing.assert_array_equal(
            restored.device_gallery, original.device_gallery
        )
        np.testing.assert_array_equal(restored.nfiq_probe, original.nfiq_probe)

    def test_restored_set_is_usable(self, tiny_study, tmp_path):
        original = tiny_study.score_sets()["DDMG"]
        path = tmp_path / "ddmg.npz"
        save_score_set(original, path)
        restored = load_score_set(path)
        cell = restored.for_pair("D0", "D1")
        assert len(cell) == len(original.for_pair("D0", "D1"))

    def test_creates_parent_dirs(self, tiny_study, tmp_path):
        path = tmp_path / "deep" / "nested" / "scores.npz"
        save_score_set(tiny_study.score_sets()["DMG"], path)
        assert path.exists()


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="does not exist"):
            load_score_set(tmp_path / "absent.npz")

    def test_incomplete_bundle(self, tmp_path):
        path = tmp_path / "broken.npz"
        np.savez(path, scores=np.zeros(3))
        with pytest.raises(ReproError):
            load_score_set(path)
