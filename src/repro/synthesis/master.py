"""Master fingerprint synthesis.

A *master finger* is the ground-truth identity object: an orientation
field plus a set of master minutiae in finger-space millimetres.  Every
impression of the finger (on any sensor) is derived from the master by
the acquisition pipeline in :mod:`repro.sensors`.

Minutiae are laid down with a Poisson-disk-style dart-throwing process
inside an elliptical finger pad, with density matched to real fingers
(~0.2 minutiae/mm^2; a typical 500-dpi flat capture contains 30–60
minutiae).  Each master minutia carries:

* position (mm) and ridge-flow-consistent direction,
* a type (ridge ending / bifurcation, ~55/45 in real fingers),
* a *robustness* in (0, 1] — how reliably a feature extractor detects
  this minutia; it falls near singularities (high ridge curvature) and
  toward the pad boundary, which is what real extractors do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..runtime.errors import SynthesisError
from .orientation import OrientationField
from .pattern import PatternClass, build_orientation_field, sample_pattern_class

#: Mean ridge period of adult fingers, millimetres.
RIDGE_PERIOD_MM = 0.46

#: Minutia type constants (match INCITS 378 encoding).
TYPE_ENDING = "ending"
TYPE_BIFURCATION = "bifurcation"


@dataclass(frozen=True)
class MasterMinutia:
    """A ground-truth minutia in finger space.

    Attributes
    ----------
    x, y:
        Position, millimetres, finger-pad-centred coordinates.
    angle:
        Ridge-flow direction, radians in [0, 2*pi).
    kind:
        ``"ending"`` or ``"bifurcation"``.
    robustness:
        Probability-like reliability of detection in a *good-quality*
        impression; degraded further by acquisition conditions.
    """

    x: float
    y: float
    angle: float
    kind: str
    robustness: float

    def __post_init__(self) -> None:
        if self.kind not in (TYPE_ENDING, TYPE_BIFURCATION):
            raise ValueError(f"bad minutia kind {self.kind!r}")
        if not 0.0 < self.robustness <= 1.0:
            raise ValueError(f"robustness must be in (0, 1], got {self.robustness}")


@dataclass(frozen=True)
class MasterFinger:
    """The ground-truth description of one finger.

    Attributes
    ----------
    pattern:
        Galton–Henry pattern class.
    fld:
        The finger's orientation field.
    minutiae:
        Master minutiae, finger space.
    pad_half_width, pad_half_height:
        Semi-axes (mm) of the elliptical finger pad.
    """

    pattern: PatternClass
    fld: OrientationField
    minutiae: Tuple[MasterMinutia, ...]
    pad_half_width: float
    pad_half_height: float

    @property
    def n_minutiae(self) -> int:
        """Number of master minutiae."""
        return len(self.minutiae)

    def positions(self) -> np.ndarray:
        """(n, 2) array of minutia positions in mm."""
        return np.array([[m.x, m.y] for m in self.minutiae], dtype=np.float64)

    def contains(self, x: float, y: float) -> bool:
        """Whether a finger-space point lies on the pad ellipse."""
        return (x / self.pad_half_width) ** 2 + (y / self.pad_half_height) ** 2 <= 1.0


def _sample_positions(
    rng: np.random.Generator,
    n_target: int,
    half_width: float,
    half_height: float,
    min_separation: float,
) -> List[Tuple[float, float]]:
    """Dart-throwing with a minimum-separation constraint.

    Real minutiae never sit closer than roughly one ridge period; without
    this constraint the matcher's tolerance boxes would merge neighbours
    and inflate impostor scores.
    """
    positions: List[Tuple[float, float]] = []
    max_attempts = n_target * 60
    attempts = 0
    min_sep_sq = min_separation * min_separation
    while len(positions) < n_target and attempts < max_attempts:
        attempts += 1
        # Rejection-sample inside the ellipse, mildly centre-weighted
        # (minutia density is a little higher near the core region).
        x = rng.normal(0.0, half_width * 0.55)
        y = rng.normal(0.0, half_height * 0.55)
        if (x / half_width) ** 2 + (y / half_height) ** 2 > 1.0:
            continue
        if any((x - px) ** 2 + (y - py) ** 2 < min_sep_sq for px, py in positions):
            continue
        positions.append((x, y))
    if len(positions) < max(8, n_target // 3):
        raise SynthesisError(
            f"dart throwing placed only {len(positions)} of {n_target} minutiae; "
            "pad or separation parameters are degenerate"
        )
    return positions


def synthesize_master_finger(
    rng: np.random.Generator,
    pattern: PatternClass = None,
    mean_minutiae: float = 50.0,
    minutiae_spread: float = 7.0,
) -> MasterFinger:
    """Generate a complete master finger.

    Parameters
    ----------
    rng:
        Source of randomness; derive it from the subject's seed-tree node
        so fingers are reproducible in isolation.
    pattern:
        Force a pattern class; sampled from natural frequencies if None.
    mean_minutiae, minutiae_spread:
        Normal law for the total master minutiae count (clipped to a
        physiological 22–75 range).
    """
    if pattern is None:
        pattern = sample_pattern_class(rng)
    fld = build_orientation_field(pattern, rng)

    # Finger-pad geometry: adults span roughly 16-21 mm wide pads.
    half_width = float(rng.uniform(8.0, 10.5))
    half_height = float(rng.uniform(10.5, 13.5))

    n_minutiae = int(np.clip(round(rng.normal(mean_minutiae, minutiae_spread)), 22, 75))
    positions = _sample_positions(
        rng,
        n_minutiae,
        half_width,
        half_height,
        min_separation=2.1 * RIDGE_PERIOD_MM,
    )

    minutiae: List[MasterMinutia] = []
    for x, y in positions:
        angle = fld.ridge_direction_at(x, y, rng)
        kind = TYPE_ENDING if rng.random() < 0.55 else TYPE_BIFURCATION
        # Robustness: degrade near singular points and near the pad edge.
        d_sing = fld.distance_to_nearest_singularity(x, y)
        sing_penalty = 0.25 * float(np.exp(-((d_sing / 2.0) ** 2)))
        radial = (x / half_width) ** 2 + (y / half_height) ** 2
        edge_penalty = 0.30 * max(0.0, radial - 0.55) / 0.45
        base = rng.uniform(0.82, 1.0)
        robustness = float(np.clip(base - sing_penalty - edge_penalty, 0.15, 1.0))
        minutiae.append(
            MasterMinutia(x=x, y=y, angle=angle, kind=kind, robustness=robustness)
        )

    return MasterFinger(
        pattern=pattern,
        fld=fld,
        minutiae=tuple(minutiae),
        pad_half_width=half_width,
        pad_half_height=half_height,
    )


__all__ = [
    "MasterMinutia",
    "MasterFinger",
    "synthesize_master_finger",
    "RIDGE_PERIOD_MM",
    "TYPE_ENDING",
    "TYPE_BIFURCATION",
]
