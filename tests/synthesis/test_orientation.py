"""Orientation-field model properties."""

import numpy as np
import pytest

from repro.synthesis.orientation import (
    OrientationField,
    Singularity,
    sample_field_grid,
)


@pytest.fixture()
def loop_field():
    return OrientationField(
        singularities=(
            Singularity(1.0, 1.5, "core"),
            Singularity(-4.0, -4.5, "delta"),
        )
    )


class TestSingularity:
    def test_kinds_validated(self):
        with pytest.raises(ValueError):
            Singularity(0, 0, "vortex")

    def test_position_vector(self):
        s = Singularity(1.0, 2.0, "core")
        np.testing.assert_array_equal(s.position, [1.0, 2.0])


class TestAngleField:
    def test_range_is_mod_pi(self, loop_field):
        rng = np.random.default_rng(0)
        xs = rng.uniform(-10, 10, 500)
        ys = rng.uniform(-12, 12, 500)
        angles = loop_field.angle_at(xs, ys)
        assert np.all(angles >= 0.0) and np.all(angles < np.pi)

    def test_broadcasting(self, loop_field):
        grid = loop_field.angle_at(np.zeros((3, 4)), np.ones((3, 4)))
        assert grid.shape == (3, 4)

    def test_constant_field_without_singularities(self):
        fld = OrientationField(base_angle=0.3)
        angles = fld.angle_at(np.array([0.0, 5.0]), np.array([0.0, -5.0]))
        np.testing.assert_allclose(angles, 0.3)

    def test_arch_bend_varies_field(self):
        fld = OrientationField(arch_bend=0.5)
        left = float(fld.angle_at(np.float64(-5.0), np.float64(0.0)))
        right = float(fld.angle_at(np.float64(5.0), np.float64(0.0)))
        assert left != pytest.approx(right)

    def test_core_produces_half_winding(self):
        # Walking a full circle around a single core, orientation advances
        # by pi (half winding), returning to the same line direction.
        fld = OrientationField(singularities=(Singularity(0, 0, "core"),))
        thetas = np.linspace(0, 2 * np.pi, 9, endpoint=False)
        angles = fld.angle_at(2.0 * np.cos(thetas), 2.0 * np.sin(thetas))
        doubled = np.exp(2j * angles)
        # Doubled-angle phasor must wind exactly once around the circle.
        total_turn = np.angle(doubled / np.roll(doubled, 1)).sum()
        assert abs(abs(total_turn) - 2 * np.pi) < 1e-6


class TestCoherence:
    def test_low_near_singularity_high_far(self, loop_field):
        near = float(loop_field.coherence(np.array([1.0]), np.array([1.5]))[0])
        far = float(loop_field.coherence(np.array([8.0]), np.array([9.0]))[0])
        assert near < far
        assert 0.0 <= near <= 1.0 and 0.0 <= far <= 1.0

    def test_uniform_field_fully_coherent(self):
        fld = OrientationField(base_angle=1.0)
        value = float(fld.coherence(np.array([0.0]), np.array([0.0]))[0])
        assert value == pytest.approx(1.0)


class TestRidgeDirection:
    def test_consistent_with_orientation(self, loop_field):
        rng = np.random.default_rng(1)
        for __ in range(20):
            x, y = rng.uniform(-8, 8, 2)
            direction = loop_field.ridge_direction_at(x, y, rng)
            orientation = float(loop_field.angle_at(np.float64(x), np.float64(y)))
            diff = (direction - orientation) % np.pi
            assert min(diff, np.pi - diff) < 1e-9

    def test_both_directions_occur(self, loop_field):
        rng = np.random.default_rng(2)
        directions = [
            loop_field.ridge_direction_at(3.0, 3.0, rng) for __ in range(50)
        ]
        spread = max(directions) - min(directions)
        assert spread > 2.0  # flips by pi happen


class TestHelpers:
    def test_distance_to_singularity(self, loop_field):
        assert loop_field.distance_to_nearest_singularity(1.0, 1.5) == 0.0
        assert OrientationField().distance_to_nearest_singularity(0, 0) == np.inf

    def test_grid_shapes(self, loop_field):
        xs, ys, angles = sample_field_grid(loop_field, 5, 6, 1.0)
        assert angles.shape == (len(ys), len(xs))
