"""Study orchestrator: generation, caching, slicing."""

import numpy as np
import pytest

from repro import InteroperabilityStudy, StudyConfig
from repro.core.scores import expected_counts
from repro.runtime import ScoreCache


class TestScoreGeneration:
    def test_counts_match_expected(self, tiny_study, tiny_config):
        sets = tiny_study.score_sets()
        expected = expected_counts(tiny_config)
        for scenario, count in expected.items():
            assert len(sets[scenario]) == count

    def test_sets_memoized(self, tiny_study):
        assert tiny_study.score_sets() is tiny_study.score_sets()

    def test_genuine_beats_impostor_in_aggregate(self, tiny_study):
        sets = tiny_study.score_sets()
        assert sets["DMG"].scores.mean() > sets["DMI"].scores.mean() + 8
        assert sets["DDMG"].scores.mean() > sets["DDMI"].scores.mean() + 5

    def test_d4_diagonal_genuine(self, tiny_study, tiny_config):
        d4 = tiny_study.d4_diagonal_genuine()
        assert len(d4) == tiny_config.n_subjects
        assert np.all(d4.device_gallery == "D4")
        assert np.all(d4.device_probe == "D4")


class TestSlicing:
    def test_genuine_scores_diagonal_uses_dmg(self, tiny_study, tiny_config):
        cell = tiny_study.genuine_scores("D0", "D0")
        assert len(cell) == tiny_config.n_subjects
        assert cell.scenario == "DMG"

    def test_genuine_scores_offdiagonal_uses_ddmg(self, tiny_study, tiny_config):
        cell = tiny_study.genuine_scores("D0", "D3")
        assert len(cell) == tiny_config.n_subjects
        assert cell.scenario == "DDMG"

    def test_genuine_scores_d4_diagonal_special(self, tiny_study):
        cell = tiny_study.genuine_scores("D4", "D4")
        assert len(cell) == tiny_study.config.n_subjects

    def test_impostor_scores_routing(self, tiny_study):
        same = tiny_study.impostor_scores("D1", "D1")
        cross = tiny_study.impostor_scores("D1", "D2")
        assert np.all(same.device_gallery == "D1")
        assert np.all(same.device_probe == "D1")
        assert np.all(cross.device_probe == "D2")

    def test_genuine_vector_subject_order(self, tiny_study, tiny_config):
        vector = tiny_study.genuine_vector("D0", "D1")
        assert vector.shape == (tiny_config.n_subjects,)
        cell = tiny_study.genuine_scores("D0", "D1")
        for sid in range(tiny_config.n_subjects):
            expected = cell.scores[cell.subject_gallery == sid][0]
            assert vector[sid] == expected


class TestAnalysisShapes:
    def test_fnmr_matrix_is_5x5(self, tiny_study):
        matrix = tiny_study.fnmr_matrix(1e-2)
        assert matrix.shape == (5, 5)
        assert np.all((matrix >= 0) | np.isnan(matrix))
        assert np.all((matrix <= 1) | np.isnan(matrix))

    def test_kendall_matrix_cells(self, tiny_study):
        results = tiny_study.kendall_matrix()
        assert len(results) == 4 * 5
        for (row, col), result in results.items():
            if row == col:
                assert result.tau == pytest.approx(1.0)

    def test_quality_surface(self, tiny_study):
        surface = tiny_study.low_score_quality_surface(cross_device=True)
        assert surface.counts.shape == (5, 5)

    def test_demographics_table(self, tiny_study, tiny_config):
        table = tiny_study.demographics()
        assert sum(table["age"].values()) == tiny_config.n_subjects


class TestCaching:
    def test_cache_roundtrip_preserves_scores(self, tmp_path):
        config = StudyConfig(n_subjects=4, master_seed=5)
        cache = ScoreCache(tmp_path)
        first = InteroperabilityStudy(config, cache=cache)
        original = first.score_sets()

        # A fresh study with the same cache must load identical sets
        # without rebuilding (collection stays untouched).
        second = InteroperabilityStudy(config, cache=cache)
        restored = second.score_sets()
        assert second._collection is None  # nothing was re-acquired
        for scenario in original:
            np.testing.assert_array_equal(
                restored[scenario].scores, original[scenario].scores
            )
            np.testing.assert_array_equal(
                restored[scenario].device_gallery,
                original[scenario].device_gallery,
            )

    def test_different_config_different_cache_key(self, tmp_path):
        cache = ScoreCache(tmp_path)
        a = InteroperabilityStudy(StudyConfig(n_subjects=4, master_seed=5), cache=cache)
        a.score_sets()
        b = InteroperabilityStudy(StudyConfig(n_subjects=4, master_seed=6), cache=cache)
        b.score_sets()
        assert not np.array_equal(
            a.score_sets()["DMG"].scores, b.score_sets()["DMG"].scores
        )


class TestDeterminism:
    def test_same_config_identical_scores(self):
        config = StudyConfig(n_subjects=4, master_seed=77)
        a = InteroperabilityStudy(config).score_sets()
        b = InteroperabilityStudy(config).score_sets()
        for scenario in a:
            np.testing.assert_array_equal(a[scenario].scores, b[scenario].scores)

    def test_different_seed_different_scores(self):
        a = InteroperabilityStudy(StudyConfig(n_subjects=4, master_seed=1)).score_sets()
        b = InteroperabilityStudy(StudyConfig(n_subjects=4, master_seed=2)).score_sets()
        assert not np.array_equal(a["DMG"].scores, b["DMG"].scores)
