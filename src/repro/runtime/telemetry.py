"""Process-wide telemetry: span timing, metrics, and structured logs.

The study executes ~616,000 matcher invocations at paper scale; this
module is how that run stops being a black box.  Three cooperating
pieces, all dependency-free:

* :class:`Span` / :meth:`TelemetryRecorder.span` — a context-manager
  tree of wall-clock timings (synthesis → acquisition → extraction →
  matching → analysis), assembled into a nested dict for the run
  manifest.
* :class:`MetricsRegistry` — named counters, gauges and fixed-bucket
  histograms (matcher invocations per scenario, cache hits/misses,
  pool chunk latencies, NFIQ tallies).  Snapshots are plain dicts so
  worker processes can aggregate locally and the parent merges them
  on chunk return — no shared memory, no locks across processes.
* :func:`configure_logging` — stdlib ``logging`` with a single-line
  JSON formatter, switched by ``REPRO_LOG_LEVEL`` or ``--log-level``.
* :class:`TraceContext` — the serving layer's per-request span
  timeline (request id, named phases, micro-batch annotations),
  propagated through a :mod:`contextvars` variable so the admission
  queue and collector can annotate the request that enqueued each
  comparison without explicit plumbing.

Telemetry is **off by default**: the process-wide recorder starts as a
:class:`NullRecorder` whose every operation is a cheap no-op (mirroring
the ``NullProgress`` pattern), so the test suite and library users who
never opt in pay essentially nothing.  ``enable_telemetry()`` swaps in
a live :class:`TelemetryRecorder`; hot paths guard per-item work behind
``recorder.active``.
"""

from __future__ import annotations

import bisect
import contextvars
import json
import logging
import os
import re
import sys
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

#: Histogram bucket upper bounds — a log-ish scale in seconds that
#: resolves both a ~1 ms matcher call and a ~10 s scenario chunk.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class MetricsRegistry:
    """Named counters, gauges and histograms for one process.

    Mutations are lock-protected (threads may share a registry); cross-
    process aggregation goes through :meth:`snapshot` on the worker and
    :meth:`merge` on the parent, which is how the score-generation pool
    reports without any shared state.

    Parameters
    ----------
    buckets:
        Histogram bucket upper bounds, strictly increasing.  Every
        histogram in a registry shares them so snapshots merge
        bucket-for-bucket.
    """

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self._lock = threading.Lock()
        self._bounds = tuple(buckets)
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        # name -> [count, total, min, max, per-bucket counts (+overflow)]
        self._histograms: Dict[str, list] = {}

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = [0, 0.0, float("inf"), float("-inf"),
                        [0] * (len(self._bounds) + 1)]
                self._histograms[name] = hist
            hist[0] += 1
            hist[1] += value
            hist[2] = min(hist[2], value)
            hist[3] = max(hist[3], value)
            hist[4][bisect.bisect_left(self._bounds, value)] += 1

    def counter_value(self, name: str) -> int:
        """Current value of counter ``name`` (zero if never counted)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """A JSON-able copy of every metric, suitable for :meth:`merge`."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: {
                        "count": h[0],
                        "sum": h[1],
                        "min": h[2],
                        "max": h[3],
                        "buckets": list(h[4]),
                    }
                    for name, h in self._histograms.items()
                },
                "bucket_bounds": list(self._bounds),
            }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (typically from a worker process) in.

        Counters add, gauges last-write-win, histograms combine count /
        sum / min / max and add bucket-for-bucket.  Raises ``ValueError``
        when the snapshot's bucket bounds disagree with this registry's
        (merging those would silently misfile observations).
        """
        bounds = snapshot.get("bucket_bounds")
        if bounds is not None and tuple(bounds) != self._bounds:
            raise ValueError(
                "cannot merge metrics snapshot: bucket bounds differ"
            )
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in snapshot.get("gauges", {}).items():
                self._gauges[name] = value
            for name, data in snapshot.get("histograms", {}).items():
                hist = self._histograms.get(name)
                if hist is None:
                    hist = [0, 0.0, float("inf"), float("-inf"),
                            [0] * (len(self._bounds) + 1)]
                    self._histograms[name] = hist
                hist[0] += data["count"]
                hist[1] += data["sum"]
                hist[2] = min(hist[2], data["min"])
                hist[3] = max(hist[3], data["max"])
                for k, bucket_count in enumerate(data["buckets"]):
                    hist[4][k] += bucket_count

    def reset(self) -> None:
        """Drop every metric (used by pool workers between chunks)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


class Span:
    """One timed node in the span tree.

    Spans are created by :meth:`TelemetryRecorder.span`; ``seconds`` is
    ``None`` while the span is still open.
    """

    __slots__ = ("name", "started_at", "seconds", "children")

    def __init__(self, name: str, started_at: float) -> None:
        self.name = name
        self.started_at = started_at
        self.seconds: Optional[float] = None
        self.children: List["Span"] = []

    def to_dict(self, now: Optional[float] = None) -> dict:
        """Nested-dict form used by the run manifest.

        An unfinished span reports its elapsed time so far when ``now``
        is given, else ``0.0``.
        """
        if self.seconds is not None:
            seconds = self.seconds
        elif now is not None:
            seconds = max(0.0, now - self.started_at)
        else:
            seconds = 0.0
        return {
            "name": self.name,
            "seconds": round(seconds, 6),
            "children": [child.to_dict(now) for child in self.children],
        }


class TelemetryRecorder:
    """Spans + metrics for one process.

    One recorder is process-wide (see :func:`get_recorder`); the span
    stack assumes spans open and close on a single thread, which is how
    the study pipeline runs.  Metrics are thread-safe.

    Parameters
    ----------
    clock:
        Injectable monotonic time source, for deterministic tests.
    """

    #: Hot paths check this before doing per-item timing work.
    active = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.metrics = MetricsRegistry()
        self._root = Span("run", clock())
        self._stack: List[Span] = [self._root]

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Open a child span of the innermost open span."""
        node = Span(name, self._clock())
        self._stack[-1].children.append(node)
        self._stack.append(node)
        try:
            yield node
        finally:
            node.seconds = self._clock() - node.started_at
            self._stack.pop()

    def count(self, name: str, n: int = 1) -> None:
        """Increment a counter (delegates to :attr:`metrics`)."""
        self.metrics.count(name, n)

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge (delegates to :attr:`metrics`)."""
        self.metrics.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        """Record a histogram observation (delegates to :attr:`metrics`)."""
        self.metrics.observe(name, value)

    def merge_metrics(self, snapshot: dict) -> None:
        """Fold a worker-process metrics snapshot into this recorder."""
        self.metrics.merge(snapshot)

    def counter_value(self, name: str) -> int:
        """Current value of one counter (0 when never incremented).

        Convenience for assertions — chaos tests check recovery through
        ``recorder.counter_value("supervisor.retries")`` instead of
        taking a full snapshot.
        """
        return self.metrics.counter_value(name)

    def span_tree(self) -> dict:
        """The full span tree; the root covers the recorder's lifetime."""
        return self._root.to_dict(self._clock())


class NullRecorder(TelemetryRecorder):
    """The default recorder: counts nothing, times nothing, writes nothing.

    Mirrors :class:`~repro.runtime.progress.NullProgress` — the library
    is always instrumented, but pays for it only after
    :func:`enable_telemetry`.
    """

    active = False

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """A no-op context manager."""
        yield None

    def count(self, name: str, n: int = 1) -> None:
        """No-op."""

    def gauge(self, name: str, value: float) -> None:
        """No-op."""

    def observe(self, name: str, value: float) -> None:
        """No-op."""

    def merge_metrics(self, snapshot: dict) -> None:
        """No-op."""


_RECORDER: TelemetryRecorder = NullRecorder()


def get_recorder() -> TelemetryRecorder:
    """The process-wide recorder (a :class:`NullRecorder` until enabled)."""
    return _RECORDER


def set_recorder(recorder: TelemetryRecorder) -> TelemetryRecorder:
    """Install ``recorder`` process-wide; returns the previous one."""
    global _RECORDER
    previous = _RECORDER
    _RECORDER = recorder
    return previous


def enable_telemetry(
    clock: Callable[[], float] = time.perf_counter,
) -> TelemetryRecorder:
    """Swap in a live recorder and return it."""
    recorder = TelemetryRecorder(clock=clock)
    set_recorder(recorder)
    return recorder


def disable_telemetry() -> None:
    """Restore the zero-overhead :class:`NullRecorder`."""
    set_recorder(NullRecorder())


# ----------------------------------------------------------------------
# Request tracing
# ----------------------------------------------------------------------
#: Accepted shape of a caller-supplied request id (an ``X-Request-ID``
#: header).  Anything else is replaced by a generated id rather than
#: flowed into logs verbatim.
_REQUEST_ID_PATTERN = re.compile(r"^[A-Za-z0-9._\-]{1,128}$")


def new_request_id() -> str:
    """A fresh 16-hex-character request id (collision-safe per service)."""
    return uuid.uuid4().hex[:16]


def sanitize_request_id(candidate: Optional[str]) -> Optional[str]:
    """``candidate`` if it is a well-formed request id, else ``None``.

    Guards the reqlog and the response headers against header injection:
    only short token-ish ids propagate; everything else is regenerated.
    """
    if isinstance(candidate, str) and _REQUEST_ID_PATTERN.match(candidate):
        return candidate
    return None


class TracePhase:
    """One named, timed segment of a request's life."""

    __slots__ = ("name", "seconds")

    def __init__(self, name: str, seconds: float) -> None:
        self.name = name
        self.seconds = seconds

    def to_dict(self) -> dict:
        """Render as ``{"name": ..., "ms": ...}`` for timelines and logs."""
        return {"name": self.name, "ms": round(self.seconds * 1000.0, 3)}


class TraceContext:
    """The per-request span timeline of the serving layer.

    One is created per HTTP request (see
    :class:`~repro.service.server.VerificationServer`), installed in a
    :mod:`contextvars` variable so every coroutine the request awaits —
    including :meth:`~repro.service.batching.MicroBatcher.score` — can
    reach it without plumbing, and serialized into the request audit log
    when the response goes out.  Phases appear in completion order; the
    canonical lifecycle is ``parse → gallery → [prefilter →] queue_wait
    → batch_wait → match → respond`` (``prefilter`` only appears on
    two-stage ``/identify`` requests, timing the descriptor top-K scan).

    The micro-batch collector annotates the trace from the event loop
    via :meth:`note_batch` (which batch carried each comparison, how
    long it queued); the request's own coroutine only reads the trace
    after its scores resolve, so no locking is needed on the single
    serving loop.
    """

    __slots__ = (
        "request_id", "endpoint", "started_at", "phases",
        "batch_ids", "queue_wait_s", "batch_wait_s", "match_s",
        "meta", "_clock",
    )

    def __init__(
        self,
        request_id: Optional[str] = None,
        endpoint: str = "",
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.request_id = request_id or new_request_id()
        self.endpoint = endpoint
        self._clock = clock
        self.started_at = clock()
        self.phases: List[TracePhase] = []
        self.batch_ids: List[int] = []
        self.queue_wait_s = 0.0
        self.batch_wait_s = 0.0
        self.match_s = 0.0
        self.meta: Dict[str, object] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a named segment and append it to the timeline."""
        started = self._clock()
        try:
            yield
        finally:
            self.add_phase(name, self._clock() - started)

    def add_phase(self, name: str, seconds: float) -> None:
        """Append one already-measured segment."""
        self.phases.append(TracePhase(name, max(0.0, seconds)))

    def note_batch(
        self,
        batch_id: int,
        queue_wait_s: float,
        batch_wait_s: float,
        match_s: float,
    ) -> None:
        """Record that one of this request's comparisons rode ``batch_id``.

        A 1:N identify fans into many jobs which may land in several
        batches; waits aggregate by ``max`` (the jobs overlap in time,
        so the slowest one is what the client experienced).
        """
        if batch_id not in self.batch_ids:
            self.batch_ids.append(batch_id)
        self.queue_wait_s = max(self.queue_wait_s, queue_wait_s)
        self.batch_wait_s = max(self.batch_wait_s, batch_wait_s)
        self.match_s = max(self.match_s, match_s)

    def finalize_batch_phases(self) -> None:
        """Fold the batch annotations into the phase timeline.

        Called once by the server after the handler returns, so the
        queue/batch/match segments appear in their canonical position
        even though they were measured by the collector.
        """
        if not self.batch_ids:
            return
        self.add_phase("queue_wait", self.queue_wait_s)
        self.add_phase("batch_wait", self.batch_wait_s)
        self.add_phase("match", self.match_s)

    def elapsed(self) -> float:
        """Seconds since the trace started."""
        return self._clock() - self.started_at

    def timeline(self) -> dict:
        """The JSON-able span timeline (reqlog / slow-log payload)."""
        return {
            "request_id": self.request_id,
            "endpoint": self.endpoint,
            "total_ms": round(self.elapsed() * 1000.0, 3),
            "phases": [phase.to_dict() for phase in self.phases],
            "batch_ids": list(self.batch_ids),
            "queue_wait_ms": round(self.queue_wait_s * 1000.0, 3),
            "batch_wait_ms": round(self.batch_wait_s * 1000.0, 3),
            "match_ms": round(self.match_s * 1000.0, 3),
        }


_TRACE: "contextvars.ContextVar[Optional[TraceContext]]" = contextvars.ContextVar(
    "repro_trace", default=None
)


def current_trace() -> Optional[TraceContext]:
    """The trace of the request the current coroutine is serving."""
    return _TRACE.get()


def set_current_trace(
    trace: Optional[TraceContext],
) -> "contextvars.Token":
    """Install ``trace`` for the current context; returns a reset token."""
    return _TRACE.set(trace)


def reset_current_trace(token: "contextvars.Token") -> None:
    """Undo a :func:`set_current_trace` (restores the previous trace)."""
    _TRACE.reset(token)


@contextmanager
def trace_request(
    request_id: Optional[str] = None, endpoint: str = ""
) -> Iterator[TraceContext]:
    """Create, install, and on exit uninstall a :class:`TraceContext`."""
    trace = TraceContext(request_id=request_id, endpoint=endpoint)
    token = set_current_trace(trace)
    try:
        yield trace
    finally:
        reset_current_trace(token)


# ----------------------------------------------------------------------
# Structured logging
# ----------------------------------------------------------------------
class JsonLogFormatter(logging.Formatter):
    """Render each log record as one JSON object per line.

    A machine-parsable run log pairs with the run manifest: the manifest
    is the end-of-run summary, the log is the during-run stream.
    """

    def format(self, record: logging.LogRecord) -> str:
        """Serialize ``record`` (plus any ``extra={"data": ...}``)."""
        payload = {
            "ts": round(record.created, 3),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        data = getattr(record, "data", None)
        if isinstance(data, dict):
            payload.update(data)
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def configure_logging(
    level: Optional[str] = None, stream=None
) -> logging.Logger:
    """Configure the ``repro`` logger with a JSON handler.

    ``level`` falls back to ``REPRO_LOG_LEVEL`` and then ``WARNING``.
    Idempotent: a previously-installed telemetry handler is replaced,
    not stacked, so repeated CLI invocations in one process never
    double-log.
    """
    resolved = (level or os.environ.get("REPRO_LOG_LEVEL") or "WARNING").upper()
    logger = logging.getLogger("repro")
    logger.setLevel(resolved)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_telemetry", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLogFormatter())
    handler._repro_telemetry = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.propagate = False
    return logger


def get_logger(name: str) -> logging.Logger:
    """A child of the ``repro`` logger (silent until configured)."""
    return logging.getLogger(f"repro.{name}")


# Library etiquette: without configure_logging(), repro loggers must stay
# silent rather than fall through to logging's last-resort handler.
logging.getLogger("repro").addHandler(logging.NullHandler())


__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "Span",
    "TelemetryRecorder",
    "NullRecorder",
    "get_recorder",
    "set_recorder",
    "enable_telemetry",
    "disable_telemetry",
    "TraceContext",
    "TracePhase",
    "new_request_id",
    "sanitize_request_id",
    "current_trace",
    "set_current_trace",
    "reset_current_trace",
    "trace_request",
    "JsonLogFormatter",
    "configure_logging",
    "get_logger",
]
