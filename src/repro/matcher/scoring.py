"""Similarity score computation.

The BioEngine SDK "returns a score based on how similar it thinks the two
templates are — the higher the score the more likely it is that the two
images come from the same finger" (Section III.A).  The paper's figures
put essentially all impostor mass below 7 and genuine mass mostly in the
7–24 band, so this scorer is calibrated to the same landmark scale:

``score = SCALE * sqrt(match_ratio) * consistency * quality_weight``

* ``match_ratio``   — (n_matched - chance floor)^2 / (overlap_a *
  overlap_b): the squared pair count normalized by how many minutiae
  *could* have matched given the actual overlap region (the classical
  Jain et al. normalization).  Subtracting the chance floor removes the
  few pairs any two fingers share by coincidence, and flooring the
  overlap denominators keeps tiny accidental overlap regions from
  inflating impostor ratios;
* ``sqrt``          — expands the low end so chance-level impostor
  agreement lands in the 0–4 band while strong genuine agreement reaches
  the high teens / low twenties;
* ``consistency``   — tightness of positional and direction residuals
  (pairs barely inside tolerance count for less);
* ``quality_weight`` — matched pairs of low-quality minutiae are less
  trustworthy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .pairing import ANGLE_TOL_RAD, POSITION_TOL_MM, PairingResult

#: Full-scale score (calibrated to the paper's figures).
SCORE_SCALE = 30.0

#: Comparisons with fewer matched pairs than this score as chance.
MIN_PAIRS_FOR_IDENTITY = 5

#: Matched pairs any two fingers share by coincidence (subtracted).
CHANCE_PAIR_FLOOR = 3

#: Overlap denominators are floored here so accidental tiny overlap
#: regions cannot inflate impostor match ratios.
MIN_OVERLAP_DENOMINATOR = 14

#: Templates smaller than this cannot be meaningfully matched.
MIN_TEMPLATE_MINUTIAE = 4


@dataclass(frozen=True)
class ScoreBreakdown:
    """A similarity score with its contributing factors (for diagnostics)."""

    score: float
    match_ratio: float
    consistency: float
    quality_weight: float
    n_matched: int
    n_overlap_a: int
    n_overlap_b: int


def compute_score(
    pairing: PairingResult,
    qualities_a: np.ndarray,
    qualities_b: np.ndarray,
) -> ScoreBreakdown:
    """Score an aligned, paired comparison.

    Parameters
    ----------
    pairing:
        The correspondence result.
    qualities_a, qualities_b:
        Per-minutia qualities (0–100) of the full templates, indexed by
        the pair indices in ``pairing.pairs``.
    """
    n_matched = pairing.n_matched
    overlap_a = max(pairing.n_overlap_a, n_matched, MIN_OVERLAP_DENOMINATOR)
    overlap_b = max(pairing.n_overlap_b, n_matched, MIN_OVERLAP_DENOMINATOR)

    if n_matched < MIN_PAIRS_FOR_IDENTITY:
        # Chance-level evidence: score proportional to the raw pair count,
        # deep inside the impostor band (the paper's 0-1 histogram bin
        # holds ~78% of the impostor mass).
        return ScoreBreakdown(
            score=0.18 * n_matched,
            match_ratio=0.0,
            consistency=0.0,
            quality_weight=0.0,
            n_matched=n_matched,
            n_overlap_a=pairing.n_overlap_a,
            n_overlap_b=pairing.n_overlap_b,
        )

    effective = max(0, n_matched - CHANCE_PAIR_FLOOR)
    match_ratio = (effective * effective) / (overlap_a * overlap_b)
    match_ratio = min(match_ratio, 1.0)

    # Residual tightness: 1.0 for perfectly registered pairs, ~0.5 when
    # pairs hug the tolerance boundary.
    pos_term = float((1.0 - 0.5 * (pairing.residuals_mm / POSITION_TOL_MM) ** 2).mean())
    ang_term = float(
        (1.0 - 0.5 * (pairing.angle_residuals_rad / ANGLE_TOL_RAD) ** 2).mean()
    )
    consistency = min(max(0.5 * (pos_term + ang_term), 0.30), 1.0)

    qa = np.asarray(qualities_a, dtype=np.float64)
    qb = np.asarray(qualities_b, dtype=np.float64)
    pair_quality = np.sqrt(
        qa[pairing.pairs[:, 0]] * qb[pairing.pairs[:, 1]]
    ) / 100.0
    quality_weight = min(max(0.55 + 0.45 * float(pair_quality.mean()), 0.0), 1.0)

    score = SCORE_SCALE * np.sqrt(match_ratio) * consistency * quality_weight
    return ScoreBreakdown(
        score=float(score),
        match_ratio=float(match_ratio),
        consistency=consistency,
        quality_weight=quality_weight,
        n_matched=n_matched,
        n_overlap_a=pairing.n_overlap_a,
        n_overlap_b=pairing.n_overlap_b,
    )


__all__ = [
    "ScoreBreakdown",
    "compute_score",
    "SCORE_SCALE",
    "MIN_PAIRS_FOR_IDENTITY",
    "CHANCE_PAIR_FLOOR",
    "MIN_OVERLAP_DENOMINATOR",
    "MIN_TEMPLATE_MINUTIAE",
]
