"""Descriptive statistics helpers."""

import numpy as np
import pytest

from repro.stats.descriptive import overlap_coefficient, proportion, summarize


class TestSummarize:
    def test_known_values(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary.n == 5
        assert summary.mean == 3.0
        assert summary.median == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0

    def test_single_value(self):
        summary = summarize([7.0])
        assert summary.std == 0.0
        assert summary.q25 == summary.q75 == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            summarize([1.0, float("nan")])

    def test_render(self):
        assert "n=3" in summarize([1, 2, 3]).render("scores")


class TestProportion:
    def test_basic(self):
        assert proportion(1, 4) == 0.25

    def test_zero_total(self):
        assert proportion(0, 0) == 0.0

    def test_count_exceeds_total(self):
        with pytest.raises(ValueError):
            proportion(5, 4)

    def test_negative(self):
        with pytest.raises(ValueError):
            proportion(-1, 4)


class TestOverlapCoefficient:
    def test_identical_samples_full_overlap(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=2000)
        assert overlap_coefficient(x, x) > 0.95

    def test_disjoint_samples_no_overlap(self):
        assert overlap_coefficient([0, 1], [100, 101]) == pytest.approx(0.0)

    def test_paper_claim_direction(self):
        # Greater separation -> smaller overlap, the metric behind the
        # paper's "overlap of genuine and impostor distributions is
        # greater when acquired from diverse sensors".
        rng = np.random.default_rng(1)
        imp = rng.normal(1, 1, 3000)
        gen_close = rng.normal(3, 1, 3000)
        gen_far = rng.normal(8, 1, 3000)
        assert overlap_coefficient(gen_close, imp) > overlap_coefficient(gen_far, imp)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            overlap_coefficient([], [1.0])
