"""The documented public API surface works as advertised."""

import numpy as np

import repro


class TestTopLevelImports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_snippet(self):
        """The README / module docstring snippet, executed verbatim."""
        from repro import InteroperabilityStudy, StudyConfig

        study = InteroperabilityStudy(StudyConfig(n_subjects=4))
        score_sets = study.score_sets()
        table5 = study.fnmr_matrix(1e-4)
        table4 = study.kendall_matrix()
        assert set(score_sets) == {"DMG", "DMI", "DDMG", "DDMI"}
        assert table5.shape == (5, 5)
        assert len(table4) == 20


class TestSubpackageFacades:
    def test_matcher_facade(self, genuine_template_pair):
        matcher = repro.BioEngineMatcher()
        score = matcher.match(*genuine_template_pair)
        assert score > 0

    def test_sensor_facade(self, tiny_population):
        sensor = repro.build_sensor("D2")
        impression = sensor.acquire(
            tiny_population.subject(0), "right_index", np.random.default_rng(0)
        )
        assert impression.device_id == "D2"

    def test_device_constants(self):
        assert repro.DEVICE_ORDER == ("D0", "D1", "D2", "D3", "D4")
        assert len(repro.DEVICE_PROFILES) == 5
        assert len(repro.LIVESCAN_DEVICES) == 4

    def test_incits_via_io(self, genuine_template_pair):
        from repro.io import decode, encode

        template = genuine_template_pair[0]
        restored, __ = decode(encode(template))
        assert len(restored) == len(template)
